//! Zero-dependency tracing, metrics and profiling for the ValueNet pipeline.
//!
//! Three primitives, one registry, three sinks:
//!
//! * **Spans** ([`span`]) — hierarchical wall-clock regions timed with the
//!   process-wide monotonic clock. Each thread keeps its own span stack and
//!   aggregation table (no locks on the hot path); when a thread ends —
//!   including the short-lived scoped workers `valuenet-par` fans out — its
//!   table is merged into the global registry, so aggregate counts and
//!   durations are identical for any thread count.
//! * **Counters** ([`Counter`]) — `static`-friendly atomic totals, e.g. FLOPs
//!   executed or database rows scanned.
//! * **Histograms** ([`Histogram`]) — `static`-friendly fixed-bucket
//!   distributions (see [`hist`]) with p50/p90/p99 extraction. Span
//!   durations get a histogram per span path automatically.
//!
//! Everything is gated on one process-wide flag: with observability disabled
//! (the default) a span is a single relaxed atomic load and a counter add is
//! the same, so instrumented kernels stay within noise of uninstrumented
//! ones (`BENCH_obs.json` tracks the measured delta).
//!
//! Sinks, selected via environment variables (read by [`init_from_env`]):
//!
//! | variable | effect |
//! |---|---|
//! | `OBS=1` | enable; print the span-tree summary to stderr on [`finish`] |
//! | `OBS_JSONL=path` | enable; stream span/counter/histogram/metric events as JSONL |
//! | `OBS_CHROME_TRACE=path` | enable; write a `chrome://tracing` / Perfetto trace on [`finish`] |
//! | `OBS_EVENT_CAP=n` | cap raw span events kept in memory (default 1,000,000) |
//! | `OBS_PROFILE=path` | enable; sample the span stack, write a collapsed-stack report on [`finish`] |
//! | `OBS_PROFILE_HZ=n` | sampling rate for `OBS_PROFILE` (default 99) |
//!
//! Observability v2 adds request-scoped primitives on top ([`trace`],
//! [`flight`], [`slo`], [`profile`], [`check`]) — see `DESIGN.md`
//! ("Observability" and "Observability v2") for the span taxonomy and the
//! serving-path trace model.

pub mod check;
pub mod flight;
mod hist;
pub mod json;
pub mod profile;
mod sink;
pub mod slo;
pub mod trace;

pub use flight::FlightRecorder;
pub use hist::{bucket_bounds, bucket_index, percentile_from_counts, NBUCKETS};
pub use sink::{
    chrome_trace, summary, write_run_report, write_run_report_with, DifficultyRow, JsonlWriter,
    RUN_REPORT_SCHEMA_VERSION,
};
pub use slo::{SloPolicy, SloReport};
pub use trace::{RequestTrace, SpanCtx, TraceId};

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable flag, configuration and clock
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Whether raw span events (for the JSONL / Chrome-trace sinks) are kept.
static EVENTS_WANTED: AtomicBool = AtomicBool::new(false);
static EVENT_COUNT: AtomicU64 = AtomicU64::new(0);
/// Cached copy of [`Config::event_cap`] so the span hot path never locks.
static EVENT_CAP: AtomicU64 = AtomicU64::new(1_000_000);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Sink configuration (normally derived from the environment).
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Stream events to this JSONL file on [`finish`].
    pub jsonl: Option<String>,
    /// Write a Chrome-trace JSON file on [`finish`].
    pub chrome_trace: Option<String>,
    /// Print the human-readable tree summary to stderr on [`finish`].
    pub summary: bool,
    /// Maximum raw span events kept in memory (0 = default 1,000,000).
    pub event_cap: usize,
}

impl Config {
    fn event_cap(&self) -> u64 {
        if self.event_cap == 0 {
            1_000_000
        } else {
            self.event_cap as u64
        }
    }
}

fn config() -> MutexGuard<'static, Config> {
    static CONFIG: OnceLock<Mutex<Config>> = OnceLock::new();
    lock(CONFIG.get_or_init(|| Mutex::new(Config::default())))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// True when observability is collecting. All instrumentation primitives
/// check this one relaxed atomic first; this is the whole disabled-path cost.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off (sinks are configured via [`install`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Installs a sink configuration and enables collection.
pub fn install(cfg: Config) {
    EVENTS_WANTED
        .store(cfg.jsonl.is_some() || cfg.chrome_trace.is_some(), Ordering::Relaxed);
    EVENT_CAP.store(cfg.event_cap(), Ordering::Relaxed);
    *config() = cfg;
    set_enabled(true);
}

/// Reads `OBS`, `OBS_JSONL`, `OBS_CHROME_TRACE` and `OBS_EVENT_CAP` and
/// enables observability if any sink is requested. Returns whether
/// collection is now enabled. Binaries call this once at startup and
/// [`finish`] once at exit; libraries only instrument.
pub fn init_from_env() -> bool {
    let jsonl = std::env::var("OBS_JSONL").ok().filter(|s| !s.is_empty());
    let chrome_trace = std::env::var("OBS_CHROME_TRACE").ok().filter(|s| !s.is_empty());
    let summary = std::env::var("OBS").map(|v| v != "0").unwrap_or(false)
        || std::env::var("OBS_SUMMARY").map(|v| v != "0").unwrap_or(false);
    let event_cap = std::env::var("OBS_EVENT_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    let profile_path = std::env::var("OBS_PROFILE").ok().filter(|s| !s.is_empty());
    if jsonl.is_none() && chrome_trace.is_none() && !summary && profile_path.is_none() {
        return false;
    }
    install(Config { jsonl, chrome_trace, summary, event_cap });
    if let Some(path) = profile_path {
        let hz = std::env::var("OBS_PROFILE_HZ").ok().and_then(|v| v.parse().ok()).unwrap_or(99);
        profile::start(&path, hz);
    }
    true
}

/// Nanoseconds since the process's observability epoch (first use).
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Span paths: interned (parent, name) chains
// ---------------------------------------------------------------------------

const ROOT: u32 = u32::MAX;

#[derive(Default)]
struct PathTable {
    /// `(parent id, name)` per node, in interning order (parents first).
    nodes: Vec<(u32, &'static str)>,
    index: HashMap<(u32, &'static str), u32>,
}

impl PathTable {
    fn intern(&mut self, parent: u32, name: &'static str) -> u32 {
        if let Some(&id) = self.index.get(&(parent, name)) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push((parent, name));
        self.index.insert((parent, name), id);
        id
    }

    /// The names from root to `id`.
    fn path(&self, id: u32) -> Vec<&'static str> {
        let mut names = Vec::new();
        let mut cur = id;
        while cur != ROOT {
            let (parent, name) = self.nodes[cur as usize];
            names.push(name);
            cur = parent;
        }
        names.reverse();
        names
    }
}

/// Per-path aggregate: call count, duration moments, duration histogram.
#[derive(Clone)]
struct Agg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    buckets: Vec<u64>,
}

impl Agg {
    fn new() -> Self {
        Agg { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0, buckets: vec![0; NBUCKETS] }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    fn merge(&mut self, other: &Agg) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// One finished span occurrence (kept only when a raw-event sink is active).
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name (leaf, not the full path).
    pub name: &'static str,
    /// Observability thread id (dense, assigned on first use per thread).
    pub tid: u32,
    /// Nesting depth at the time the span ran (0 = thread root).
    pub depth: u16,
    /// Start, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

// ---------------------------------------------------------------------------
// Thread-local collection state
// ---------------------------------------------------------------------------

struct ThreadState {
    tid: u32,
    stack: Vec<u32>,
    paths: PathTable,
    aggs: Vec<Agg>,
    events: Vec<SpanEvent>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            paths: PathTable::default(),
            aggs: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Merges collected data into the global registry and resets the local
    /// tables, re-interning any still-open span stack so open spans keep
    /// valid ids.
    fn flush(&mut self) {
        let paths = std::mem::take(&mut self.paths);
        let aggs = std::mem::take(&mut self.aggs);
        let events = std::mem::take(&mut self.events);
        if !aggs.is_empty() || !events.is_empty() {
            let mut g = global();
            // Local interning order guarantees parents precede children, so a
            // single forward pass can map local ids to global ids.
            let mut map = vec![ROOT; paths.nodes.len()];
            for (local_id, &(parent, name)) in paths.nodes.iter().enumerate() {
                let gparent = if parent == ROOT { ROOT } else { map[parent as usize] };
                map[local_id] = g.paths.intern(gparent, name);
            }
            for (local_id, agg) in aggs.iter().enumerate() {
                if agg.count == 0 {
                    continue;
                }
                let gid = map[local_id] as usize;
                if g.aggs.len() <= gid {
                    g.aggs.resize_with(gid + 1, Agg::new);
                }
                g.aggs[gid].merge(agg);
            }
            g.events.extend(events);
        }
        // Rebuild the open stack against the fresh local table.
        let old_stack = std::mem::take(&mut self.stack);
        let mut parent = ROOT;
        for old_id in old_stack {
            let name = paths.nodes[old_id as usize].1;
            parent = self.paths.intern(parent, name);
            self.stack.push(parent);
        }
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Merges this thread's collected spans into the global registry. Worker
/// threads flush automatically when they exit; long-lived threads (and the
/// main thread, via [`finish`] / [`snapshot`]) flush explicitly.
pub fn flush_thread() {
    TLS.with(|s| s.borrow_mut().flush());
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An RAII guard timing a region. Created by [`span`]; records on drop.
#[must_use = "a span measures the region it is alive for"]
pub struct Span {
    path: u32,
    name: &'static str,
    start_ns: u64,
    active: bool,
    /// Whether this span pushed a frame onto the profiler's stack mirror
    /// (profiling may toggle while the span is open, so pop symmetrically).
    profiled: bool,
}

/// Opens a span named `name`, nested under the innermost open span on this
/// thread. When observability is disabled this is a single atomic load.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { path: 0, name, start_ns: 0, active: false, profiled: false };
    }
    let path = TLS.with(|s| {
        let mut st = s.borrow_mut();
        let parent = st.stack.last().copied().unwrap_or(ROOT);
        let id = st.paths.intern(parent, name);
        st.stack.push(id);
        id
    });
    let profiled = profile::push_frame(name);
    Span { path, name, start_ns: now_ns(), active: true, profiled }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.profiled {
            profile::pop_frame();
        }
        if !self.active {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        TLS.with(|s| {
            let mut st = s.borrow_mut();
            // Pop back to this span: drop order guarantees inner spans closed
            // first, so the top of the stack is this span's id.
            debug_assert_eq!(st.stack.last().copied(), Some(self.path));
            st.stack.pop();
            let depth = st.stack.len() as u16;
            let id = self.path as usize;
            if st.aggs.len() <= id {
                st.aggs.resize_with(id + 1, Agg::new);
            }
            st.aggs[id].record(dur_ns);
            if EVENTS_WANTED.load(Ordering::Relaxed) {
                let cap = EVENT_CAP.load(Ordering::Relaxed);
                if EVENT_COUNT.fetch_add(1, Ordering::Relaxed) < cap {
                    let tid = st.tid;
                    st.events.push(SpanEvent {
                        name: self.name,
                        tid,
                        depth,
                        start_ns: self.start_ns,
                        dur_ns,
                    });
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Counters and histograms (static-friendly, lock-free)
// ---------------------------------------------------------------------------

struct GlobalState {
    paths: PathTable,
    aggs: Vec<Agg>,
    events: Vec<SpanEvent>,
    counters: Vec<&'static Counter>,
    histograms: Vec<&'static Histogram>,
    metrics: Vec<Metric>,
}

fn global() -> MutexGuard<'static, GlobalState> {
    static GLOBAL: OnceLock<Mutex<GlobalState>> = OnceLock::new();
    lock(GLOBAL.get_or_init(|| {
        Mutex::new(GlobalState {
            paths: PathTable::default(),
            aggs: Vec::new(),
            events: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
            metrics: Vec::new(),
        })
    }))
}

/// A named monotonic counter, designed to live in a `static`:
///
/// ```
/// static ROWS: valuenet_obs::Counter = valuenet_obs::Counter::new("exec.rows_scanned");
/// ROWS.add(128);
/// ```
///
/// Adds are relaxed atomic increments; with observability disabled they are
/// a single atomic load. Counters self-register in the global registry on
/// first use.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter named `name` (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Adds `n`; no-op while observability is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn register(&'static self) {
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            global().counters.push(self);
        }
    }
}

/// A named fixed-bucket histogram for a `static` (see [`hist`] for the
/// bucket layout). Records are two relaxed atomic increments.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; NBUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// A histogram named `name` (const, for statics).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; NBUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Records one value; no-op while observability is disabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        if !self.registered.load(Ordering::Relaxed)
            && !self.registered.swap(true, Ordering::Relaxed)
        {
            global().histograms.push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile `q` in `(0, 1]`, as a bucket midpoint
    /// (relative error ≤ 12.5%). 0.0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        let counts: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        percentile_from_counts(&counts, q)
    }
}

// ---------------------------------------------------------------------------
// Metrics (sparse named time series, e.g. per-epoch loss)
// ---------------------------------------------------------------------------

/// One point of a named series (e.g. `train.epoch_loss` at epoch 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Series name.
    pub name: &'static str,
    /// Series index (epoch, step, …).
    pub index: u64,
    /// Value.
    pub value: f64,
}

/// Records one metric point; no-op while observability is disabled.
pub fn metric(name: &'static str, index: u64, value: f64) {
    if !enabled() {
        return;
    }
    global().metrics.push(Metric { name, index, value });
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Aggregate statistics of one span path.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Names from root to this span.
    pub path: Vec<String>,
    /// Occurrences.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Fastest occurrence.
    pub min_ns: u64,
    /// Slowest occurrence.
    pub max_ns: u64,
    /// Median duration (bucket midpoint).
    pub p50_ns: f64,
    /// 90th-percentile duration.
    pub p90_ns: f64,
    /// 99th-percentile duration.
    pub p99_ns: f64,
}

impl SpanStat {
    /// `a/b/c` form of the path.
    pub fn path_string(&self) -> String {
        self.path.join("/")
    }

    /// Nesting depth (0 = root).
    pub fn depth(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Counter value at snapshot time.
#[derive(Debug, Clone)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Total.
    pub value: u64,
}

/// Histogram summary at snapshot time.
#[derive(Debug, Clone)]
pub struct HistStat {
    /// Histogram name.
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// p50 (bucket midpoint).
    pub p50: f64,
    /// p90.
    pub p90: f64,
    /// p99.
    pub p99: f64,
}

/// A point-in-time copy of everything the registry has aggregated.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Span aggregates in deterministic tree order (depth-first, siblings
    /// sorted by name), independent of thread scheduling.
    pub spans: Vec<SpanStat>,
    /// Raw span events (present only when an event sink is configured).
    pub events: Vec<SpanEvent>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistStat>,
    /// Metric points in recording order.
    pub metrics: Vec<Metric>,
    /// Raw span events discarded after the event cap was hit.
    pub dropped_events: u64,
}

impl Snapshot {
    /// The span aggregate whose path ends with `name` (first match in tree
    /// order).
    pub fn span_named(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path.last().map(String::as_str) == Some(name))
    }

    /// The counter named `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }
}

/// Flushes the current thread and captures a [`Snapshot`]. Does not clear
/// the registry — snapshots are cumulative.
pub fn snapshot() -> Snapshot {
    flush_thread();
    let g = global();
    // Children per node, then DFS with siblings sorted by name so the order
    // is independent of which worker thread flushed first.
    let n = g.paths.nodes.len();
    let mut roots: Vec<u32> = Vec::new();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, &(parent, _)) in g.paths.nodes.iter().enumerate() {
        if parent == ROOT {
            roots.push(id as u32);
        } else {
            children[parent as usize].push(id as u32);
        }
    }
    let by_name = |table: &PathTable, ids: &mut Vec<u32>| {
        ids.sort_by_key(|&id| table.nodes[id as usize].1);
    };
    by_name(&g.paths, &mut roots);
    for c in &mut children {
        by_name(&g.paths, c);
    }
    let mut spans = Vec::new();
    let mut stack: Vec<u32> = roots.into_iter().rev().collect();
    while let Some(id) = stack.pop() {
        if let Some(agg) = g.aggs.get(id as usize) {
            if agg.count > 0 {
                spans.push(SpanStat {
                    path: g.paths.path(id).into_iter().map(String::from).collect(),
                    count: agg.count,
                    total_ns: agg.total_ns,
                    min_ns: agg.min_ns,
                    max_ns: agg.max_ns,
                    p50_ns: percentile_from_counts(&agg.buckets, 0.50),
                    p90_ns: percentile_from_counts(&agg.buckets, 0.90),
                    p99_ns: percentile_from_counts(&agg.buckets, 0.99),
                });
            }
        }
        for &c in children[id as usize].iter().rev() {
            stack.push(c);
        }
    }

    let mut counters: Vec<CounterStat> = g
        .counters
        .iter()
        .map(|c| CounterStat { name: c.name().to_string(), value: c.get() })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut histograms: Vec<HistStat> = g
        .histograms
        .iter()
        .map(|h| HistStat {
            name: h.name().to_string(),
            count: h.count(),
            sum: h.sum(),
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p99: h.percentile(0.99),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    let cap = EVENT_CAP.load(Ordering::Relaxed);
    let recorded = EVENT_COUNT.load(Ordering::Relaxed);
    Snapshot {
        spans,
        events: g.events.clone(),
        counters,
        histograms,
        metrics: g.metrics.clone(),
        dropped_events: recorded.saturating_sub(cap.min(recorded)),
    }
}

/// Flushes, snapshots, and drives every configured sink: tree summary to
/// stderr (`OBS=1`), JSONL event stream (`OBS_JSONL`), Chrome trace
/// (`OBS_CHROME_TRACE`). Returns the snapshot for further processing (e.g.
/// the run report). Safe to call when disabled (returns an empty snapshot).
pub fn finish() -> Snapshot {
    if let Some(path) = profile::stop() {
        eprintln!("valuenet-obs: collapsed-stack profile written to {path}");
    }
    let snap = snapshot();
    let cfg = config().clone();
    if cfg.summary {
        eprint!("{}", summary(&snap));
    }
    if let Some(path) = &cfg.jsonl {
        if let Err(e) = sink::write_jsonl(path, &snap) {
            eprintln!("valuenet-obs: cannot write {path}: {e}");
        }
    }
    if let Some(path) = &cfg.chrome_trace {
        if let Err(e) = std::fs::write(path, chrome_trace(&snap)) {
            eprintln!("valuenet-obs: cannot write {path}: {e}");
        }
    }
    snap
}

/// Clears all aggregated state (spans, events, counter/histogram values,
/// metrics) and the calling thread's local tables. Intended for tests;
/// sinks and the enabled flag are untouched.
pub fn reset() {
    TLS.with(|s| {
        let mut st = s.borrow_mut();
        let open = st.stack.len();
        st.paths = PathTable::default();
        st.aggs = Vec::new();
        st.events = Vec::new();
        st.stack.clear();
        // Open spans would record against a cleared table; tests reset
        // between top-level regions, so there should be none.
        debug_assert_eq!(open, 0, "reset() with open spans");
    });
    let mut g = global();
    g.paths = PathTable::default();
    g.aggs = Vec::new();
    g.events = Vec::new();
    g.metrics = Vec::new();
    for c in &g.counters {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in &g.histograms {
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    EVENT_COUNT.store(0, Ordering::Relaxed);
}
