//! A minimal JSON value, writer and parser.
//!
//! `valuenet-obs` is dependency-free by design (it sits below every other
//! crate, including `valuenet-tensor`), so it carries its own tiny JSON
//! layer instead of using the vendored `serde_json`. The writer emits
//! compact single-line JSON (one event per line is the JSONL contract);
//! the parser is a recursive-descent reader used by the round-trip tests
//! and the `vn-obs-check` CI validator.

use std::fmt::Write as _;

/// A JSON value. Integers are kept separate from floats so `u64` counters
/// (e.g. FLOP counts) render exactly instead of through an `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (rendered without a fraction).
    Int(i64),
    /// A float (rendered with the shortest round-trippable form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (integers widened), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_string())?;
        if float {
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Num))
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-sync to char boundary: back up and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("train.epoch \"quoted\"\n".into())),
            ("count", Json::Int(42)),
            ("big", Json::Int(i64::MAX)),
            ("ratio", Json::Num(0.125)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : -2.5e1 } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Int(1));
        let inner = &v.get("a").unwrap().as_arr().unwrap()[1];
        assert_eq!(inner.get("b").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("héllo → wörld ✓".into());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
