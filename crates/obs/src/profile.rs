//! Low-overhead wall-clock sampling profiler over the span stack.
//!
//! Every instrumented thread mirrors its open-span names into a small
//! shared slot ([`ProfSlot`]) while profiling is on; a sampler thread wakes
//! `OBS_PROFILE_HZ` times a second and copies each live thread's stack into
//! a collapsed-stack tally (`a;b;c -> samples`). Because the mirror is only
//! maintained while the `PROFILING` flag is set, the cost when profiling is
//! off is one relaxed atomic load per span — the same budget as the rest of
//! the crate — and while it is on, a push/pop of one `&'static str` under an
//! uncontended per-thread mutex.
//!
//! The report is written when profiling stops ([`stop`], called from
//! [`crate::finish`]): either classic collapsed-stack text (`a;b;c 42` per
//! line, flamegraph-ready) or, when the output path ends in `.jsonl`,
//! `type:"profile"` records that `vn-obs-check` validates.
//!
//! Sampling is cross-thread, so the sampler cannot read foreign
//! thread-locals; instead each thread publishes a `Weak` handle to its slot
//! in a global registry, and dead threads fall out on the next sweep.
//! Passing `hz = 0` to [`start`] skips the sampler thread entirely —
//! samples are then taken only by explicit [`sweep`] calls, which is what
//! the deterministic tests use.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};
use std::time::Duration;

static PROFILING: AtomicBool = AtomicBool::new(false);

/// One thread's published span-stack mirror.
struct ProfSlot {
    stack: Mutex<Vec<&'static str>>,
}

struct ProfState {
    threads: Vec<Weak<ProfSlot>>,
    samples: HashMap<String, u64>,
    sampler: Option<std::thread::JoinHandle<()>>,
    out_path: Option<String>,
}

fn state() -> MutexGuard<'static, ProfState> {
    static STATE: OnceLock<Mutex<ProfState>> = OnceLock::new();
    STATE
        .get_or_init(|| {
            Mutex::new(ProfState {
                threads: Vec::new(),
                samples: HashMap::new(),
                sampler: None,
                out_path: None,
            })
        })
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn lock_stack(slot: &ProfSlot) -> MutexGuard<'_, Vec<&'static str>> {
    slot.stack.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static SLOT: RefCell<Option<Arc<ProfSlot>>> = const { RefCell::new(None) };
}

/// Whether the profiler is currently collecting.
#[inline]
pub fn profiling() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Mirrors a span entry onto this thread's published stack. Returns whether
/// a frame was pushed — the caller must pop symmetrically ([`pop_frame`])
/// exactly when it did, since profiling may toggle while the span is open.
#[inline]
pub(crate) fn push_frame(name: &'static str) -> bool {
    if !profiling() {
        return false;
    }
    SLOT.with(|s| {
        let mut slot = s.borrow_mut();
        let arc = slot
            .get_or_insert_with(|| {
                let arc = Arc::new(ProfSlot { stack: Mutex::new(Vec::new()) });
                state().threads.push(Arc::downgrade(&arc));
                arc
            })
            .clone();
        lock_stack(&arc).push(name);
    });
    true
}

/// Pops the frame pushed by a `push_frame` that returned true.
#[inline]
pub(crate) fn pop_frame() {
    SLOT.with(|s| {
        if let Some(arc) = s.borrow().as_ref() {
            lock_stack(arc).pop();
        }
    });
}

/// Takes one sample of every live instrumented thread into the collapsed
/// tally. The sampler thread calls this on its cadence; tests call it
/// directly for deterministic sample counts.
pub fn sweep() {
    let mut st = state();
    let slots: Vec<Arc<ProfSlot>> = st.threads.iter().filter_map(Weak::upgrade).collect();
    st.threads.retain(|w| w.strong_count() > 0);
    for slot in &slots {
        let key = lock_stack(slot).join(";");
        if key.is_empty() {
            continue; // thread idle (no open spans)
        }
        *st.samples.entry(key).or_insert(0) += 1;
    }
}

/// Starts profiling: span stacks are mirrored from now on and, with
/// `hz > 0`, a sampler thread sweeps them `hz` times a second. The report
/// goes to `path` when [`stop`] runs. `hz = 0` means manual [`sweep`]-only
/// mode. No-op if profiling is already on.
pub fn start(path: &str, hz: u32) {
    if PROFILING.swap(true, Ordering::Relaxed) {
        return;
    }
    let mut st = state();
    st.out_path = Some(path.to_string());
    if hz == 0 {
        return;
    }
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz));
    let handle = std::thread::Builder::new()
        .name("vn-obs-sampler".into())
        .spawn(move || {
            while PROFILING.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                sweep();
            }
        })
        .expect("spawn vn-obs-sampler");
    st.sampler = Some(handle);
}

/// Stops profiling, joins the sampler, and writes the report to the path
/// given to [`start`]. Returns that path when a report was written. Safe to
/// call when profiling is off (no-op).
pub fn stop() -> Option<String> {
    if !PROFILING.swap(false, Ordering::Relaxed) {
        return None;
    }
    // Take the handle out before joining: the sampler's sweep() locks the
    // same state.
    let (handle, path) = {
        let mut st = state();
        (st.sampler.take(), st.out_path.take())
    };
    if let Some(h) = handle {
        let _ = h.join();
    }
    let path = path?;
    if let Err(e) = write_report(&path) {
        eprintln!("valuenet-obs: cannot write profile {path}: {e}");
    }
    Some(path)
}

/// The collapsed-stack tally, sorted by stack for deterministic output.
pub fn report() -> Vec<(String, u64)> {
    let st = state();
    let mut rows: Vec<(String, u64)> = st.samples.iter().map(|(k, &v)| (k.clone(), v)).collect();
    rows.sort();
    rows
}

/// Clears accumulated samples (tests).
pub fn reset_samples() {
    state().samples.clear();
}

/// Writes the collapsed-stack report: `type:"profile"` JSONL when `path`
/// ends in `.jsonl`, plain `stack count` lines otherwise.
///
/// # Errors
/// File I/O failures.
pub fn write_report(path: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let rows = report();
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    if path.ends_with(".jsonl") {
        let ver = ("schema_version", Json::Int(crate::RUN_REPORT_SCHEMA_VERSION));
        writeln!(
            f,
            "{}",
            Json::obj(vec![
                ver.clone(),
                ("type", Json::Str("meta".into())),
                ("stream", Json::Str("profile".into())),
                ("unit", Json::Str("samples".into())),
            ])
            .render()
        )?;
        for (stack, n) in &rows {
            writeln!(
                f,
                "{}",
                Json::obj(vec![
                    ver.clone(),
                    ("type", Json::Str("profile".into())),
                    ("stack", Json::Str(stack.clone())),
                    ("samples", Json::Int(*n as i64)),
                ])
                .render()
            )?;
        }
    } else {
        for (stack, n) in &rows {
            writeln!(f, "{stack} {n}")?;
        }
    }
    f.into_inner().map_err(std::io::IntoInnerError::into_error)?.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test drives the whole lifecycle: the profiler is process-global
    /// state, so splitting into parallel #[test]s would race on it.
    #[test]
    fn manual_sweep_collects_collapsed_stacks_and_writes_both_formats() {
        let dir = std::env::temp_dir();
        let txt = dir.join(format!("vn-prof-{}.txt", std::process::id()));
        let txt_s = txt.to_str().unwrap().to_string();

        crate::set_enabled(true);
        reset_samples();
        start(&txt_s, 0); // manual mode: no sampler thread
        assert!(profiling());

        {
            let _outer = crate::span("prof_outer");
            {
                let _inner = crate::span("prof_inner");
                sweep();
                sweep();
            }
            sweep();
        }
        sweep(); // stack empty now: contributes nothing

        let rows = report();
        let get = |k: &str| rows.iter().find(|(s, _)| s == k).map(|(_, n)| *n);
        assert_eq!(get("prof_outer;prof_inner"), Some(2));
        assert_eq!(get("prof_outer"), Some(1));

        // stop() writes collapsed text.
        assert_eq!(stop(), Some(txt_s.clone()));
        assert!(!profiling());
        let text = std::fs::read_to_string(&txt).unwrap();
        assert!(text.lines().any(|l| l == "prof_outer;prof_inner 2"), "got: {text}");

        // JSONL form carries schema_version-stamped profile records.
        let jl = dir.join(format!("vn-prof-{}.jsonl", std::process::id()));
        let jl_s = jl.to_str().unwrap();
        write_report(jl_s).unwrap();
        let text = std::fs::read_to_string(&jl).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines[0].get("type").and_then(Json::as_str), Some("meta"));
        let rec = lines[1..]
            .iter()
            .find(|r| r.get("stack").and_then(Json::as_str) == Some("prof_outer;prof_inner"))
            .expect("profile record for nested stack");
        assert_eq!(rec.get("type").and_then(Json::as_str), Some("profile"));
        assert_eq!(rec.get("samples").and_then(Json::as_f64), Some(2.0));
        assert!(rec.get("schema_version").is_some());

        // Toggling off stops mirroring: spans opened now contribute nothing.
        reset_samples();
        {
            let _s = crate::span("prof_after_stop");
            sweep();
        }
        assert!(report().iter().all(|(s, _)| !s.contains("prof_after_stop")));

        let _ = std::fs::remove_file(&txt);
        let _ = std::fs::remove_file(&jl);
    }
}
