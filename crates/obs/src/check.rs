//! Validation of observability JSONL streams (the `vn-obs-check` logic).
//!
//! Every record kind the crate emits has a shape check here, so CI catches
//! producer drift at artifact time instead of dashboard time. Unknown
//! record types fail, and — unlike the pre-v2 validator — so does a
//! `schema_version` this build does not know: a skipped version check is
//! how silently incompatible artifacts slip through.

use crate::json::Json;
use crate::RUN_REPORT_SCHEMA_VERSION;
use std::collections::HashSet;

/// Outcome of validating one stream.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Non-blank lines seen.
    pub lines: usize,
    /// Distinct span names seen (raw events or aggregates).
    pub spans: HashSet<String>,
    /// counter/histogram/metric/bench/checkpoint records.
    pub scalars: usize,
    /// `type:"trace"` records.
    pub traces: usize,
    /// `type:"profile"` records.
    pub profiles: usize,
    /// `type:"slo"` records.
    pub slos: usize,
    /// Whether a meta line was seen.
    pub saw_meta: bool,
    /// Every failure, as `<path>:<line>: <what>`.
    pub errors: Vec<String>,
}

impl CheckReport {
    /// Whether the stream validated cleanly.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }

    /// The one-line success summary `vn-obs-check` prints.
    pub fn summary(&self) -> String {
        format!(
            "OK — {} lines, {} distinct spans, {} scalar records, {} traces, {} profiles, {} slos",
            self.lines,
            self.spans.len(),
            self.scalars,
            self.traces,
            self.profiles,
            self.slos
        )
    }
}

fn require_num(r: &Json, field: &str) -> Result<(), String> {
    match r.get(field).and_then(Json::as_f64) {
        Some(_) => Ok(()),
        None => Err(format!("missing numeric `{field}`")),
    }
}

fn require_str(r: &Json, field: &str) -> Result<(), String> {
    match r.get(field).and_then(Json::as_str) {
        Some(_) => Ok(()),
        None => Err(format!("missing string `{field}`")),
    }
}

fn require_arr(r: &Json, field: &str) -> Result<(), String> {
    match r.get(field).and_then(Json::as_arr) {
        Some(_) => Ok(()),
        None => Err(format!("missing array `{field}`")),
    }
}

/// Validates one already-parsed record. Returns the record's span name when
/// it contributes one.
fn check_record(record: &Json, report: &mut CheckReport) -> Result<Option<String>, String> {
    // Any record carrying a schema_version must carry one this build knows.
    if let Some(v) = record.get("schema_version") {
        match v.as_f64() {
            Some(n) if n == RUN_REPORT_SCHEMA_VERSION as f64 => {}
            Some(n) => {
                return Err(format!(
                    "unknown schema_version {n} (this build understands {RUN_REPORT_SCHEMA_VERSION})"
                ))
            }
            None => return Err("non-numeric schema_version".to_string()),
        }
    }
    match record.get("type").and_then(Json::as_str) {
        Some("meta") | Some("checkpoint_meta") => {
            report.saw_meta = true;
            if record.get("schema_version").is_none() {
                return Err("meta line missing schema_version".to_string());
            }
            Ok(None)
        }
        Some("span") | Some("span_agg") => match record.get("name").and_then(Json::as_str) {
            Some(name) => Ok(Some(name.to_string())),
            None => Err("span record without name".to_string()),
        },
        Some("counter") | Some("histogram") | Some("metric") | Some("bench")
        | Some("checkpoint_param") | Some("checkpoint_end") => {
            report.scalars += 1;
            Ok(None)
        }
        Some("trace") => {
            require_num(record, "trace_id")?;
            require_str(record, "outcome")?;
            require_arr(record, "stages")?;
            require_arr(record, "attempts")?;
            report.traces += 1;
            Ok(None)
        }
        Some("profile") => {
            require_str(record, "stack")?;
            require_num(record, "samples")?;
            report.profiles += 1;
            Ok(None)
        }
        Some("slo") => {
            require_num(record, "availability_burn")?;
            require_num(record, "latency_burn")?;
            require_num(record, "total")?;
            report.slos += 1;
            Ok(None)
        }
        Some(other) => Err(format!("unknown type {other:?}")),
        None => Err("record without type field".to_string()),
    }
}

/// Validates a whole stream. `path` labels errors; `required_spans` must
/// each appear as a span event or aggregate.
pub fn check_stream(path: &str, text: &str, required_spans: &[&str]) -> CheckReport {
    let mut report = CheckReport::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let record = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                report.errors.push(format!("{path}:{}: invalid JSON: {e}", lineno + 1));
                continue;
            }
        };
        match check_record(&record, &mut report) {
            Ok(Some(span)) => {
                report.spans.insert(span);
            }
            Ok(None) => {}
            Err(e) => report.errors.push(format!("{path}:{}: {e}", lineno + 1)),
        }
    }
    if report.lines == 0 {
        report.errors.push(format!("{path} is empty"));
    } else if !report.saw_meta {
        report.errors.push(format!("{path}: no meta line with schema_version"));
    }
    for name in required_spans {
        if !report.spans.contains(*name) {
            report.errors.push(format!("required span {name:?} not present in {path}"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = r#"{"schema_version":1,"type":"meta","clock":"monotonic_ns"}"#;

    fn check(lines: &[&str]) -> CheckReport {
        check_stream("test.jsonl", &lines.join("\n"), &[])
    }

    #[test]
    fn span_records_validate_and_collect_names() {
        let r = check(&[
            META,
            r#"{"type":"span","name":"serve.request","tid":0,"start_ns":1,"dur_ns":2}"#,
            r#"{"type":"span_agg","name":"matmul","count":3}"#,
        ]);
        assert!(r.ok(), "{:?}", r.errors);
        assert!(r.spans.contains("serve.request") && r.spans.contains("matmul"));
        assert!(!check(&[META, r#"{"type":"span","tid":0}"#]).ok());
    }

    #[test]
    fn scalar_records_validate() {
        let r = check(&[
            META,
            r#"{"type":"counter","name":"exec.rows","value":7}"#,
            r#"{"type":"histogram","name":"lat","count":1}"#,
            r#"{"type":"metric","name":"loss","index":0,"value":0.5}"#,
            r#"{"type":"bench","name":"matmul","ns":12}"#,
        ]);
        assert!(r.ok(), "{:?}", r.errors);
        assert_eq!(r.scalars, 4);
    }

    #[test]
    fn trace_records_validate_shape() {
        let good = r#"{"schema_version":1,"type":"trace","trace_id":7,"outcome":"completed","stages":[],"attempts":[]}"#;
        let r = check(&[META, good]);
        assert!(r.ok(), "{:?}", r.errors);
        assert_eq!(r.traces, 1);
        // Each required field is load-bearing.
        for missing in [
            r#"{"type":"trace","outcome":"completed","stages":[],"attempts":[]}"#,
            r#"{"type":"trace","trace_id":7,"stages":[],"attempts":[]}"#,
            r#"{"type":"trace","trace_id":7,"outcome":"completed","attempts":[]}"#,
            r#"{"type":"trace","trace_id":7,"outcome":"completed","stages":[]}"#,
        ] {
            assert!(!check(&[META, missing]).ok(), "accepted: {missing}");
        }
    }

    #[test]
    fn profile_records_validate_shape() {
        let r = check(&[META, r#"{"type":"profile","stack":"a;b","samples":12}"#]);
        assert!(r.ok(), "{:?}", r.errors);
        assert_eq!(r.profiles, 1);
        assert!(!check(&[META, r#"{"type":"profile","samples":12}"#]).ok());
        assert!(!check(&[META, r#"{"type":"profile","stack":"a;b"}"#]).ok());
    }

    #[test]
    fn slo_records_validate_shape() {
        let r = check(&[
            META,
            r#"{"type":"slo","window":"cumulative","total":10,"good":10,"availability_burn":0.0,"latency_burn":0.0}"#,
        ]);
        assert!(r.ok(), "{:?}", r.errors);
        assert_eq!(r.slos, 1);
        assert!(!check(&[META, r#"{"type":"slo","total":10,"latency_burn":0.0}"#]).ok());
    }

    #[test]
    fn unknown_schema_version_fails_not_skips() {
        let r = check(&[r#"{"schema_version":2,"type":"meta"}"#]);
        assert!(!r.ok());
        assert!(r.errors[0].contains("unknown schema_version"), "{:?}", r.errors);
        // …even on non-meta records.
        let r = check(&[
            META,
            r#"{"schema_version":99,"type":"trace","trace_id":1,"outcome":"x","stages":[],"attempts":[]}"#,
        ]);
        assert!(!r.ok());
    }

    #[test]
    fn unknown_types_missing_meta_and_required_spans_fail() {
        assert!(!check(&[META, r#"{"type":"mystery"}"#]).ok());
        assert!(!check(&[r#"{"type":"counter","name":"x","value":1}"#]).ok()); // no meta
        assert!(!check(&[]).ok()); // empty
        let r = check_stream("t.jsonl", &format!("{META}\n"), &["serve.request"]);
        assert!(!r.ok());
        assert!(r.errors[0].contains("required span"), "{:?}", r.errors);
    }
}
