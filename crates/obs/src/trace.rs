//! Request-scoped trace contexts.
//!
//! The serving engine allocates a [`TraceId`] for every admitted request
//! and builds a [`RequestTrace`] as the request moves through the bounded
//! queue, worker attempts, retries and the reply path. Per-stage timing is
//! collected through an ambient [`SpanCtx`]: the worker installs the
//! context for the duration of one attempt ([`install_ctx`]) and the
//! pipeline reports every stage-gate crossing ([`enter_stage`]) without
//! knowing anything about the engine. Because the context's event buffer
//! sits behind an `Arc<Mutex<…>>` shared with the queued job, the recorded
//! stages survive a worker panic — the respawned worker's degraded retry
//! appends to the same trace.
//!
//! When no context is installed (training, evaluation, plain library use)
//! [`enter_stage`] is one relaxed atomic load — the same discipline as the
//! rest of this crate.
//!
//! Timestamps are microseconds on the process-wide observability epoch
//! ([`crate::now_ns`]), so durations are directly comparable across
//! threads and with span data.

use crate::json::Json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Microseconds since the process observability epoch.
#[inline]
pub fn now_us() -> u64 {
    crate::now_ns() / 1_000
}

/// Process-unique request trace identifier (dense, allocated at admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Allocates the next id (never zero).
    pub fn next() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One stage-gate-to-stage-gate region of one attempt.
#[derive(Debug, Clone)]
pub struct StageEvent {
    /// Stage label (`preprocess`, `value_lookup`, …).
    pub stage: &'static str,
    /// Attempt index the stage ran in (0 = first attempt).
    pub attempt: u32,
    /// Entry timestamp, µs on the process epoch.
    pub start_us: u64,
    /// Duration until the next gate (or the attempt's end), µs.
    pub dur_us: u64,
}

/// One worker attempt of a request.
#[derive(Debug, Clone)]
pub struct AttemptTrace {
    /// Attempt index (0 = first attempt).
    pub attempt: u32,
    /// Whether the attempt ran on the scalar degradation path.
    pub degraded: bool,
    /// Queue wait before this attempt (dispatch − enqueue), µs.
    pub queue_wait_us: u64,
    /// `ok`, `panic`, `deadline`, or `error`.
    pub outcome: &'static str,
    /// Free-form detail (panic message, error kind, …).
    pub detail: String,
}

/// The complete per-request trace, finished at reply time.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// Protocol correlation id, when the client sent one.
    pub request_id: Option<i64>,
    /// Database the request targeted.
    pub db: String,
    /// Deadline budget in ms (0 = none).
    pub deadline_ms: u64,
    /// Admission timestamp, µs on the process epoch.
    pub submitted_us: u64,
    /// Reply timestamp, µs on the process epoch (0 until finished).
    pub finished_us: u64,
    /// Terminal outcome: `completed` or an error-kind label
    /// (`quarantined`, `deadline_exceeded`, …).
    pub outcome: String,
    /// Fault attribution (rendered `FaultSpec` / panic message), when the
    /// request carried or triggered one.
    pub fault: Option<String>,
    /// Stage-gate regions across all attempts, in order.
    pub stages: Vec<StageEvent>,
    /// Per-attempt records, in order.
    pub attempts: Vec<AttemptTrace>,
    /// Decode-batch cohort size of the last attempt that reached the neural
    /// decode (1 = decoded alone, 0 = never reached the decode).
    pub batch_size: u32,
}

impl RequestTrace {
    /// A fresh trace for an admitted request.
    pub fn new(request_id: Option<i64>, db: String, deadline_ms: u64) -> RequestTrace {
        RequestTrace {
            trace_id: TraceId::next(),
            request_id,
            db,
            deadline_ms,
            submitted_us: now_us(),
            finished_us: 0,
            outcome: String::new(),
            fault: None,
            stages: Vec::new(),
            attempts: Vec::new(),
            batch_size: 0,
        }
    }

    /// Marks the trace finished with a terminal outcome label.
    pub fn finish(&mut self, outcome: &str) {
        self.finished_us = now_us();
        self.outcome = outcome.to_string();
    }

    /// Whether the terminal outcome is anything but a clean completion —
    /// such traces are pinned in the flight recorder.
    pub fn is_terminal_failure(&self) -> bool {
        !self.outcome.is_empty() && self.outcome != "completed"
    }

    /// End-to-end latency (admission to reply), µs.
    pub fn total_us(&self) -> u64 {
        self.finished_us.saturating_sub(self.submitted_us)
    }

    /// Summed queue wait across all attempts, µs.
    pub fn queue_wait_us(&self) -> u64 {
        self.attempts.iter().map(|a| a.queue_wait_us).sum()
    }

    /// Total duration per stage label, aggregated across attempts, in
    /// first-seen order.
    pub fn stage_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        for ev in &self.stages {
            match totals.iter_mut().find(|(s, _)| *s == ev.stage) {
                Some((_, d)) => *d += ev.dur_us,
                None => totals.push((ev.stage, ev.dur_us)),
            }
        }
        totals
    }

    /// The full span tree as JSON — the flight-recorder / `trace`-verb
    /// representation (`type:"trace"` in JSONL streams).
    pub fn to_json(&self) -> Json {
        let stages = self
            .stages
            .iter()
            .map(|ev| {
                Json::obj(vec![
                    ("stage", Json::Str(ev.stage.into())),
                    ("attempt", Json::Int(ev.attempt as i64)),
                    ("start_us", Json::Int(ev.start_us as i64)),
                    ("dur_us", Json::Int(ev.dur_us as i64)),
                ])
            })
            .collect();
        let attempts = self
            .attempts
            .iter()
            .map(|a| {
                Json::obj(vec![
                    ("attempt", Json::Int(a.attempt as i64)),
                    ("degraded", Json::Bool(a.degraded)),
                    ("queue_wait_us", Json::Int(a.queue_wait_us as i64)),
                    ("outcome", Json::Str(a.outcome.into())),
                    ("detail", Json::Str(a.detail.clone())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("type", Json::Str("trace".into())),
            ("trace_id", Json::Int(self.trace_id.0 as i64)),
            (
                "request_id",
                match self.request_id {
                    Some(i) => Json::Int(i),
                    None => Json::Null,
                },
            ),
            ("db", Json::Str(self.db.clone())),
            ("deadline_ms", Json::Int(self.deadline_ms as i64)),
            ("submitted_us", Json::Int(self.submitted_us as i64)),
            ("finished_us", Json::Int(self.finished_us as i64)),
            ("total_us", Json::Int(self.total_us() as i64)),
            ("queue_wait_us", Json::Int(self.queue_wait_us() as i64)),
            ("outcome", Json::Str(self.outcome.clone())),
            (
                "fault",
                match &self.fault {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
            ("batch_size", Json::Int(self.batch_size as i64)),
            ("stages", Json::Arr(stages)),
            ("attempts", Json::Arr(attempts)),
        ])
    }
}

// ---------------------------------------------------------------------------
// Ambient per-attempt context
// ---------------------------------------------------------------------------

struct CtxInner {
    attempt: u32,
    /// The stage currently between gates, with its entry timestamp.
    open: Option<(&'static str, u64)>,
    events: Vec<StageEvent>,
}

/// The per-attempt recording handle shared between the worker (which owns
/// the job) and the ambient thread-local slot the pipeline reports into.
/// The mutex makes the buffer reachable after a panic unwinds the attempt.
#[derive(Clone)]
pub struct SpanCtx {
    trace_id: TraceId,
    inner: Arc<Mutex<CtxInner>>,
}

impl SpanCtx {
    /// A fresh context for attempt `attempt` of `trace_id`.
    pub fn new(trace_id: TraceId, attempt: u32) -> SpanCtx {
        SpanCtx {
            trace_id,
            inner: Arc::new(Mutex::new(CtxInner { attempt, open: None, events: Vec::new() })),
        }
    }

    /// The trace this context records for.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// Closes the open stage (attributing elapsed time to it) and opens
    /// `stage`. Called by the pipeline at every stage gate.
    pub fn enter_stage(&self, stage: &'static str) {
        let now = now_us();
        let mut inner = lock_inner(&self.inner);
        let attempt = inner.attempt;
        if let Some((prev, start)) = inner.open.take() {
            inner.events.push(StageEvent {
                stage: prev,
                attempt,
                start_us: start,
                dur_us: now.saturating_sub(start),
            });
        }
        inner.open = Some((stage, now));
    }

    /// Closes any open stage and drains the recorded events. Called once by
    /// the worker when the attempt ends (cleanly or by panic).
    pub fn take_events(&self) -> Vec<StageEvent> {
        let now = now_us();
        let mut inner = lock_inner(&self.inner);
        let attempt = inner.attempt;
        if let Some((prev, start)) = inner.open.take() {
            inner.events.push(StageEvent {
                stage: prev,
                attempt,
                start_us: start,
                dur_us: now.saturating_sub(start),
            });
        }
        std::mem::take(&mut inner.events)
    }
}

fn lock_inner(m: &Mutex<CtxInner>) -> std::sync::MutexGuard<'_, CtxInner> {
    // A panic while the guard holds the lock would poison it; the events are
    // still wanted for the trace.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Count of installed contexts across all threads — the `enter_stage` fast
/// path bails on this one relaxed load when no request is being traced.
static ACTIVE_CTXS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<SpanCtx>> = const { RefCell::new(None) };
}

/// Uninstalls the ambient context on drop (including panic unwind).
pub struct CtxGuard {
    _private: (),
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
        ACTIVE_CTXS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Installs `ctx` as the calling thread's ambient trace context for the
/// guard's lifetime. Stage gates crossed while the guard lives are recorded
/// into `ctx`.
pub fn install_ctx(ctx: &SpanCtx) -> CtxGuard {
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    ACTIVE_CTXS.fetch_add(1, Ordering::Relaxed);
    CtxGuard { _private: () }
}

/// Reports a stage-gate crossing to the ambient context, if one is
/// installed on this thread. One relaxed atomic load otherwise.
#[inline]
pub fn enter_stage(stage: &'static str) {
    if ACTIVE_CTXS.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.enter_stage(stage);
        }
    });
}

/// The trace id of the ambient context, if one is installed on this thread.
pub fn current_trace_id() -> Option<TraceId> {
    if ACTIVE_CTXS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(SpanCtx::trace_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert!(a.0 > 0 && b.0 > 0);
    }

    #[test]
    fn stage_events_partition_the_attempt() {
        let ctx = SpanCtx::new(TraceId::next(), 0);
        ctx.enter_stage("preprocess");
        ctx.enter_stage("value_lookup");
        ctx.enter_stage("execute");
        let events = ctx.take_events();
        assert_eq!(
            events.iter().map(|e| e.stage).collect::<Vec<_>>(),
            vec!["preprocess", "value_lookup", "execute"]
        );
        // Contiguous: each stage ends where the next begins.
        for w in events.windows(2) {
            assert_eq!(w[0].start_us + w[0].dur_us, w[1].start_us);
        }
        assert!(events.iter().all(|e| e.attempt == 0));
        // Drained: a second take is empty.
        assert!(ctx.take_events().is_empty());
    }

    #[test]
    fn ambient_context_routes_to_installed_ctx_only() {
        assert_eq!(current_trace_id(), None);
        enter_stage("ignored"); // no ctx installed: must be a no-op
        let ctx = SpanCtx::new(TraceId::next(), 1);
        {
            let _g = install_ctx(&ctx);
            assert_eq!(current_trace_id(), Some(ctx.trace_id()));
            enter_stage("preprocess");
            enter_stage("execute");
        }
        assert_eq!(current_trace_id(), None);
        enter_stage("also_ignored");
        let events = ctx.take_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.attempt == 1));
    }

    #[test]
    fn stage_totals_aggregate_repeated_stages() {
        let mut t = RequestTrace::new(Some(7), "db".into(), 100);
        t.stages = vec![
            StageEvent { stage: "execute", attempt: 0, start_us: 0, dur_us: 5 },
            StageEvent { stage: "post_process", attempt: 0, start_us: 5, dur_us: 2 },
            StageEvent { stage: "execute", attempt: 0, start_us: 7, dur_us: 3 },
        ];
        assert_eq!(t.stage_totals(), vec![("execute", 8), ("post_process", 2)]);
        t.finish("completed");
        assert!(!t.is_terminal_failure());
        t.finish("quarantined");
        assert!(t.is_terminal_failure());
        let j = t.to_json();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("trace"));
        assert_eq!(j.get("outcome").and_then(Json::as_str), Some("quarantined"));
        assert_eq!(j.get("stages").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
    }
}
