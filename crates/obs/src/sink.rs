//! Output sinks: human-readable tree summary, JSONL event stream,
//! Chrome-trace export, and the structured run report.
//!
//! ## JSONL format (`OBS_JSONL=path`)
//!
//! One JSON object per line. The first line is a `meta` record carrying
//! `schema_version`; every later line has a `type` discriminator:
//!
//! ```text
//! {"type":"meta","schema_version":1,"clock":"monotonic_ns"}
//! {"type":"span","name":"train.epoch","tid":0,"depth":0,"start_ns":...,"dur_ns":...}
//! {"type":"span_agg","path":"train.epoch/train.batch","count":...,"total_ns":...,"p50_ns":...,"p90_ns":...,"p99_ns":...}
//! {"type":"counter","name":"tensor.matmul.flops","value":...}
//! {"type":"histogram","name":"beam.candidates_per_step","count":...,"sum":...,"p50":...,"p90":...,"p99":...}
//! {"type":"metric","name":"train.epoch_loss","index":2,"value":0.41}
//! ```
//!
//! ## Chrome trace (`OBS_CHROME_TRACE=path`)
//!
//! The standard `{"traceEvents":[...]}` JSON accepted by `chrome://tracing`
//! and <https://ui.perfetto.dev>: one complete (`"ph":"X"`) event per span
//! occurrence, microsecond timestamps, observability thread ids as `tid`.

use crate::json::Json;
use crate::{Snapshot, SpanStat};
use std::io::{BufWriter, Write};

/// Version stamp written into every JSONL stream and run report. Bump when
/// a field changes meaning so downstream parsers of the perf trajectory
/// (e.g. `BENCH_parallel.json` history) can dispatch on it.
pub const RUN_REPORT_SCHEMA_VERSION: i64 = 1;

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

/// Writes JSON objects one per line, stamping each record with
/// `schema_version` (unless the record already carries one). Used by the
/// observability event stream and by benchmark binaries
/// (`BENCH_parallel.json`, `BENCH_obs.json`) so every machine-readable
/// artifact in the repository shares one versioned envelope.
pub struct JsonlWriter {
    out: BufWriter<std::fs::File>,
}

impl JsonlWriter {
    /// Creates/truncates `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(JsonlWriter { out: BufWriter::new(std::fs::File::create(path)?) })
    }

    /// Writes one record, injecting `schema_version` as the first field if
    /// the object does not already have one. Non-object values are written
    /// unchanged.
    pub fn write(&mut self, record: Json) -> std::io::Result<()> {
        let record = match record {
            Json::Obj(mut entries) => {
                if !entries.iter().any(|(k, _)| k == "schema_version") {
                    entries.insert(
                        0,
                        ("schema_version".to_string(), Json::Int(RUN_REPORT_SCHEMA_VERSION)),
                    );
                }
                Json::Obj(entries)
            }
            other => other,
        };
        writeln!(self.out, "{}", record.render())
    }

    /// Flushes buffered lines to disk.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Writes the full snapshot as a JSONL event stream.
pub fn write_jsonl(path: &str, snap: &Snapshot) -> std::io::Result<()> {
    let mut w = JsonlWriter::create(path)?;
    w.write(Json::obj(vec![
        ("type", Json::Str("meta".into())),
        ("clock", Json::Str("monotonic_ns".into())),
        ("dropped_events", Json::Int(snap.dropped_events as i64)),
    ]))?;
    for e in &snap.events {
        w.write(Json::obj(vec![
            ("type", Json::Str("span".into())),
            ("name", Json::Str(e.name.into())),
            ("tid", Json::Int(e.tid as i64)),
            ("depth", Json::Int(e.depth as i64)),
            ("start_ns", Json::Int(e.start_ns as i64)),
            ("dur_ns", Json::Int(e.dur_ns as i64)),
        ]))?;
    }
    for s in &snap.spans {
        w.write(Json::obj(vec![
            ("type", Json::Str("span_agg".into())),
            ("path", Json::Str(s.path_string())),
            ("name", Json::Str(s.path.last().cloned().unwrap_or_default())),
            ("count", Json::Int(s.count as i64)),
            ("total_ns", Json::Int(s.total_ns as i64)),
            ("min_ns", Json::Int(s.min_ns as i64)),
            ("max_ns", Json::Int(s.max_ns as i64)),
            ("p50_ns", Json::Num(s.p50_ns)),
            ("p90_ns", Json::Num(s.p90_ns)),
            ("p99_ns", Json::Num(s.p99_ns)),
        ]))?;
    }
    for c in &snap.counters {
        w.write(Json::obj(vec![
            ("type", Json::Str("counter".into())),
            ("name", Json::Str(c.name.clone())),
            ("value", Json::Int(c.value as i64)),
        ]))?;
    }
    for h in &snap.histograms {
        w.write(Json::obj(vec![
            ("type", Json::Str("histogram".into())),
            ("name", Json::Str(h.name.clone())),
            ("count", Json::Int(h.count as i64)),
            ("sum", Json::Int(h.sum as i64)),
            ("p50", Json::Num(h.p50)),
            ("p90", Json::Num(h.p90)),
            ("p99", Json::Num(h.p99)),
        ]))?;
    }
    for m in &snap.metrics {
        w.write(Json::obj(vec![
            ("type", Json::Str("metric".into())),
            ("name", Json::Str(m.name.into())),
            ("index", Json::Int(m.index as i64)),
            ("value", Json::Num(m.value)),
        ]))?;
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// Chrome trace
// ---------------------------------------------------------------------------

/// Renders the snapshot's raw events as Chrome-trace JSON (load in
/// `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(snap.events.len() + 1);
    events.push(Json::obj(vec![
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Int(1)),
        ("args", Json::obj(vec![("name", Json::Str("valuenet".into()))])),
    ]));
    for e in &snap.events {
        events.push(Json::obj(vec![
            ("name", Json::Str(e.name.into())),
            ("cat", Json::Str("valuenet".into())),
            ("ph", Json::Str("X".into())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(e.tid as i64)),
            ("ts", Json::Num(e.start_ns as f64 / 1e3)),
            ("dur", Json::Num(e.dur_ns as f64 / 1e3)),
        ]));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
    .render()
}

// ---------------------------------------------------------------------------
// Tree summary
// ---------------------------------------------------------------------------

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Renders the human-readable summary: the span tree with per-path count,
/// total, mean and percentiles, then counters (plus derived matmul GFLOP/s
/// when the kernel counters are present), histograms and metrics.
pub fn summary(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "── valuenet-obs summary ──");
    if !snap.spans.is_empty() {
        let name_width = snap
            .spans
            .iter()
            .map(|s| 2 * s.depth() + s.path.last().map(String::len).unwrap_or(0))
            .max()
            .unwrap_or(0)
            .max(4);
        let _ = writeln!(
            out,
            "{:<name_width$} {:>9} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "total", "mean", "p50", "p99"
        );
        for s in &snap.spans {
            let label = format!(
                "{}{}",
                "  ".repeat(s.depth()),
                s.path.last().map(String::as_str).unwrap_or("")
            );
            let mean = s.total_ns as f64 / s.count.max(1) as f64;
            let _ = writeln!(
                out,
                "{label:<name_width$} {:>9} {:>10} {:>10} {:>10} {:>10}",
                s.count,
                fmt_ns(s.total_ns as f64),
                fmt_ns(mean),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p99_ns),
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for c in &snap.counters {
            let _ = writeln!(out, "  {:<32} {}", c.name, c.value);
        }
        // Derived kernel throughput when the matmul counters are present.
        if let (Some(flops), Some(ns)) =
            (snap.counter("tensor.matmul.flops"), snap.counter("tensor.matmul.nanos"))
        {
            if ns > 0 {
                let _ = writeln!(
                    out,
                    "  {:<32} {:.2}",
                    "tensor.matmul.gflops (derived)",
                    flops as f64 / ns as f64
                );
            }
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histograms (count / p50 / p90 / p99):");
        for h in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<32} {} / {:.1} / {:.1} / {:.1}",
                h.name, h.count, h.p50, h.p90, h.p99
            );
        }
    }
    if !snap.metrics.is_empty() {
        let _ = writeln!(out, "metrics (last value per series):");
        let mut seen: Vec<&'static str> = Vec::new();
        for m in snap.metrics.iter().rev() {
            if !seen.contains(&m.name) {
                seen.push(m.name);
            }
        }
        seen.reverse();
        for name in seen {
            if let Some(m) = snap.metrics.iter().rev().find(|m| m.name == name) {
                let _ = writeln!(out, "  {:<32} [{}] = {:.6}", m.name, m.index, m.value);
            }
        }
    }
    if snap.dropped_events > 0 {
        let _ = writeln!(
            out,
            "note: {} raw span events dropped after the event cap (OBS_EVENT_CAP)",
            snap.dropped_events
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

/// Execution-accuracy input for one Spider difficulty class.
#[derive(Debug, Clone)]
pub struct DifficultyRow {
    /// Class label (`Easy`, `Medium`, `Hard`, `Extra-Hard`).
    pub label: String,
    /// Correctly answered questions.
    pub correct: u64,
    /// Scored questions.
    pub total: u64,
}

fn span_stat_json(s: &SpanStat) -> Json {
    Json::obj(vec![
        ("path", Json::Str(s.path_string())),
        ("count", Json::Int(s.count as i64)),
        ("total_ms", Json::Num(s.total_ns as f64 / 1e6)),
        ("p50_ms", Json::Num(s.p50_ns / 1e6)),
        ("p90_ms", Json::Num(s.p90_ns / 1e6)),
        ("p99_ms", Json::Num(s.p99_ns / 1e6)),
    ])
}

/// Builds the structured run report joining per-difficulty Execution
/// Accuracy with the per-stage latency distribution of the snapshot.
pub fn run_report(rows: &[DifficultyRow], snap: &Snapshot) -> Json {
    let correct: u64 = rows.iter().map(|r| r.correct).sum();
    let total: u64 = rows.iter().map(|r| r.total).sum();
    let by_difficulty: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("difficulty", Json::Str(r.label.clone())),
                ("correct", Json::Int(r.correct as i64)),
                ("total", Json::Int(r.total as i64)),
                (
                    "accuracy",
                    if r.total > 0 {
                        Json::Num(r.correct as f64 / r.total as f64)
                    } else {
                        Json::Null
                    },
                ),
            ])
        })
        .collect();
    let stages: Vec<Json> = snap.spans.iter().map(span_stat_json).collect();
    let counters: Vec<Json> = snap
        .counters
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("name", Json::Str(c.name.clone())),
                ("value", Json::Int(c.value as i64)),
            ])
        })
        .collect();
    let metrics: Vec<Json> = snap
        .metrics
        .iter()
        .map(|m| {
            Json::obj(vec![
                ("name", Json::Str(m.name.into())),
                ("index", Json::Int(m.index as i64)),
                ("value", Json::Num(m.value)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::Int(RUN_REPORT_SCHEMA_VERSION)),
        (
            "execution_accuracy",
            Json::obj(vec![
                (
                    "overall",
                    if total > 0 {
                        Json::Num(correct as f64 / total as f64)
                    } else {
                        Json::Null
                    },
                ),
                ("by_difficulty", Json::Arr(by_difficulty)),
            ]),
        ),
        ("stages", Json::Arr(stages)),
        ("counters", Json::Arr(counters)),
        ("metrics", Json::Arr(metrics)),
    ])
}

/// Writes [`run_report`] to `path` as a single JSON document.
pub fn write_run_report(
    path: &str,
    rows: &[DifficultyRow],
    snap: &Snapshot,
) -> std::io::Result<()> {
    std::fs::write(path, run_report(rows, snap).render())
}

/// Like [`write_run_report`], but appends caller-provided top-level sections
/// to the report object — e.g. the quantized-inference accuracy comparison
/// that `table1_difficulty` produces next to the f32 run.
pub fn write_run_report_with(
    path: &str,
    rows: &[DifficultyRow],
    snap: &Snapshot,
    extra: Vec<(String, Json)>,
) -> std::io::Result<()> {
    let mut report = run_report(rows, snap);
    if let Json::Obj(fields) = &mut report {
        fields.extend(extra);
    }
    std::fs::write(path, report.render())
}
