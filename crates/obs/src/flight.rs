//! A fixed-size flight recorder for completed request traces.
//!
//! The recorder keeps the last N [`RequestTrace`]s in two rings: a *clean*
//! ring for completed requests and a *pinned* ring for terminal failures
//! (panic, quarantine, deadline miss, retry exhaustion). Routing by outcome
//! is the pinning policy: a flood of healthy traffic can only ever evict
//! other healthy traces — the request that killed a worker five minutes ago
//! is still there when someone asks, no matter how busy the server has been
//! since. Terminal traces are evicted only by newer terminal traces.
//!
//! Slot assignment is a lock-free `fetch_add` on a per-ring cursor; the
//! slot swap itself is a short per-slot mutex (writers touch exactly one
//! slot, readers copy one slot at a time), so recording never contends on
//! a recorder-wide lock.

use crate::json::Json;
use crate::trace::RequestTrace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Ring {
    slots: Vec<Mutex<Option<(u64, RequestTrace)>>>,
    cursor: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    fn push(&self, seq: u64, trace: RequestTrace) {
        let idx = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        *lock(&self.slots[idx]) = Some((seq, trace));
    }

    fn collect(&self, out: &mut Vec<(u64, RequestTrace)>) {
        for slot in &self.slots {
            if let Some((seq, trace)) = lock(slot).as_ref() {
                out.push((*seq, trace.clone()));
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The flight recorder. See the module docs for the pinning policy.
pub struct FlightRecorder {
    clean: Ring,
    pinned: Ring,
    seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` traces, split evenly between the
    /// clean and pinned rings (at least one slot each).
    pub fn new(capacity: usize) -> FlightRecorder {
        let half = (capacity / 2).max(1);
        FlightRecorder {
            clean: Ring::new(half),
            pinned: Ring::new(capacity.saturating_sub(half).max(1)),
            seq: AtomicU64::new(0),
        }
    }

    /// Records a finished trace, routing terminal failures to the pinned
    /// ring.
    pub fn record(&self, trace: RequestTrace) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if trace.is_terminal_failure() {
            self.pinned.push(seq, trace);
        } else {
            self.clean.push(seq, trace);
        }
    }

    /// Traces recorded so far (recorder lifetime total, not retained count).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// A copy of every retained trace, oldest first.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        let mut entries: Vec<(u64, RequestTrace)> = Vec::new();
        self.clean.collect(&mut entries);
        self.pinned.collect(&mut entries);
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, t)| t).collect()
    }

    /// The retained trace with id `trace_id`, if still in a ring.
    pub fn find(&self, trace_id: u64) -> Option<RequestTrace> {
        self.snapshot().into_iter().find(|t| t.trace_id.0 == trace_id)
    }

    /// The `trace`-verb payload: retained traces (newest last), optionally
    /// filtered to one trace id or truncated to the last `last`.
    pub fn to_json(&self, trace_id: Option<u64>, last: Option<usize>) -> Json {
        let mut traces = self.snapshot();
        if let Some(id) = trace_id {
            traces.retain(|t| t.trace_id.0 == id);
        }
        if let Some(n) = last {
            let skip = traces.len().saturating_sub(n);
            traces.drain(..skip);
        }
        Json::obj(vec![
            ("recorded", Json::Int(self.recorded() as i64)),
            ("retained", Json::Int(traces.len() as i64)),
            ("traces", Json::Arr(traces.iter().map(RequestTrace::to_json).collect())),
        ])
    }

    /// Appends one trace to a JSONL file (creating it with a `meta` line if
    /// new/empty) — the quarantine auto-dump. Records carry the
    /// `schema_version` envelope so `vn-obs-check` validates the file.
    ///
    /// # Errors
    /// File I/O failures.
    pub fn append_jsonl(path: &str, trace: &RequestTrace) -> std::io::Result<()> {
        use std::io::Write as _;
        let needs_meta = std::fs::metadata(path).map(|m| m.len() == 0).unwrap_or(true);
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let stamp = |record: Json| -> String {
            match record {
                Json::Obj(mut entries) => {
                    if !entries.iter().any(|(k, _)| k == "schema_version") {
                        entries.insert(
                            0,
                            (
                                "schema_version".to_string(),
                                Json::Int(crate::RUN_REPORT_SCHEMA_VERSION),
                            ),
                        );
                    }
                    Json::Obj(entries).render()
                }
                other => other.render(),
            }
        };
        if needs_meta {
            writeln!(
                f,
                "{}",
                stamp(Json::obj(vec![
                    ("type", Json::Str("meta".into())),
                    ("stream", Json::Str("flight_recorder".into())),
                    ("clock", Json::Str("monotonic_us".into())),
                ]))
            )?;
        }
        writeln!(f, "{}", stamp(trace.to_json()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id_hint: i64, outcome: &str) -> RequestTrace {
        let mut t = RequestTrace::new(Some(id_hint), "db".into(), 0);
        t.finish(outcome);
        t
    }

    #[test]
    fn terminal_pinning_beats_clean_recency() {
        let rec = FlightRecorder::new(8); // 4 clean + 4 pinned slots
        for i in 0..4 {
            rec.record(trace(i, "completed"));
        }
        let poisoned = trace(99, "quarantined");
        let poisoned_id = poisoned.trace_id.0;
        rec.record(poisoned);
        // A flood of clean traffic wraps the clean ring many times over…
        for i in 0..100 {
            rec.record(trace(1000 + i, "completed"));
        }
        // …but the terminal trace is still retained with full detail.
        let found = rec.find(poisoned_id).expect("terminal trace evicted by clean traffic");
        assert_eq!(found.outcome, "quarantined");
        assert_eq!(found.request_id, Some(99));
        // Clean ring kept only the newest window.
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 5); // 4 clean slots + 1 pinned
        assert!(snap.iter().filter(|t| t.outcome == "completed").all(|t| t
            .request_id
            .unwrap()
            >= 1096));
        assert_eq!(rec.recorded(), 105);
    }

    #[test]
    fn terminal_traces_evict_only_older_terminal_traces() {
        let rec = FlightRecorder::new(4); // 2 pinned slots
        let first = trace(1, "internal");
        let first_id = first.trace_id.0;
        rec.record(first);
        rec.record(trace(2, "deadline_exceeded"));
        rec.record(trace(3, "quarantined")); // wraps: evicts #1
        assert!(rec.find(first_id).is_none(), "oldest terminal not evicted by newer terminal");
        let outcomes: Vec<String> = rec.snapshot().into_iter().map(|t| t.outcome).collect();
        assert!(outcomes.contains(&"deadline_exceeded".to_string()));
        assert!(outcomes.contains(&"quarantined".to_string()));
    }

    #[test]
    fn json_dump_filters_and_truncates() {
        let rec = FlightRecorder::new(8);
        for i in 0..3 {
            rec.record(trace(i, "completed"));
        }
        let all = rec.to_json(None, None);
        assert_eq!(all.get("retained").and_then(Json::as_f64), Some(3.0));
        let last_two = rec.to_json(None, Some(2));
        assert_eq!(
            last_two.get("traces").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        let target = rec.snapshot()[1].trace_id.0;
        let one = rec.to_json(Some(target), None);
        let arr = one.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("trace_id").and_then(Json::as_f64), Some(target as f64));
    }

    #[test]
    fn jsonl_append_writes_meta_once() {
        let path = std::env::temp_dir().join(format!("vn-flight-test-{}.jsonl", std::process::id()));
        let path_s = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        FlightRecorder::append_jsonl(path_s, &trace(1, "quarantined")).unwrap();
        FlightRecorder::append_jsonl(path_s, &trace(2, "quarantined")).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // one meta + two traces
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
        assert!(meta.get("schema_version").is_some());
        for line in &lines[1..] {
            let t = Json::parse(line).unwrap();
            assert_eq!(t.get("type").and_then(Json::as_str), Some("trace"));
            assert!(t.get("schema_version").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }
}
