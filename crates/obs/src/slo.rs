//! SLO burn-rate arithmetic over the always-on counters and histograms.
//!
//! Two objectives, both expressed as budgets:
//!
//! * **Availability** — a target fraction of eligible requests must be
//!   served (anything the *server* failed: shed, deadline miss,
//!   quarantine, internal error counts against it; client errors do not).
//! * **Latency** — a target fraction of requests must finish under a
//!   threshold, evaluated from the bucket counts of the end-to-end latency
//!   histogram (the [`crate::hist`] layout shared with the serving engine).
//!
//! The *burn rate* is `(observed bad fraction) / (allowed bad fraction)`:
//! 1.0 means the error budget is being consumed exactly as provisioned,
//! above 1.0 the budget is burning — `vn_slo_check` exits nonzero there.
//! Windowing comes from snapshot-and-diff (`stats` delta mode), not from
//! timers inside this module, so the same arithmetic serves cumulative and
//! interval views.

use crate::hist::bucket_bounds;
use crate::json::Json;

/// Service-level objectives for a serving deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Fraction of eligible requests that must be served (e.g. `0.99`).
    pub availability_target: f64,
    /// Fraction of requests that must finish under the threshold.
    pub latency_target: f64,
    /// The latency threshold, µs.
    pub latency_threshold_us: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            availability_target: 0.99,
            latency_target: 0.99,
            latency_threshold_us: 500_000,
        }
    }
}

/// One evaluated SLO window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// `cumulative` or `delta` (snapshot-and-diff window).
    pub window: String,
    /// Eligible requests in the window.
    pub total: u64,
    /// Requests served (availability numerator).
    pub good: u64,
    /// `good / total` (1.0 when the window is empty).
    pub availability: f64,
    /// Availability burn rate (≥ 0; > 1 burns the budget).
    pub availability_burn: f64,
    /// Fraction of latency-measured requests under the threshold.
    pub fast_fraction: f64,
    /// Latency burn rate.
    pub latency_burn: f64,
    /// Whether either burn rate exceeds 1.0.
    pub breached: bool,
}

impl SloPolicy {
    /// Evaluates the objectives over one window: `good`/`total` request
    /// counts plus the bucket counts of the end-to-end latency histogram.
    /// An empty window reports burn 0 (nothing happened, nothing burned).
    pub fn evaluate(&self, window: &str, good: u64, total: u64, latency_buckets: &[u64]) -> SloReport {
        let availability = if total == 0 { 1.0 } else { good as f64 / total as f64 };
        let avail_budget = (1.0 - self.availability_target).max(f64::EPSILON);
        let availability_burn =
            if total == 0 { 0.0 } else { (1.0 - availability) / avail_budget };

        let measured: u64 = latency_buckets.iter().sum();
        // A bucket is "fast" when its whole range is under the threshold —
        // the conservative reading of the ≤12.5%-error layout.
        let fast: u64 = latency_buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| bucket_bounds(*i).1 <= self.latency_threshold_us)
            .map(|(_, &c)| c)
            .sum();
        let fast_fraction = if measured == 0 { 1.0 } else { fast as f64 / measured as f64 };
        let lat_budget = (1.0 - self.latency_target).max(f64::EPSILON);
        let latency_burn =
            if measured == 0 { 0.0 } else { (1.0 - fast_fraction) / lat_budget };

        SloReport {
            window: window.to_string(),
            total,
            good,
            availability,
            availability_burn,
            fast_fraction,
            latency_burn,
            breached: availability_burn > 1.0 || latency_burn > 1.0,
        }
    }

    /// The policy's JSON form (embedded in SLO reports).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("availability_target", Json::Num(self.availability_target)),
            ("latency_target", Json::Num(self.latency_target)),
            ("latency_threshold_us", Json::Int(self.latency_threshold_us as i64)),
        ])
    }
}

impl SloReport {
    /// The `stats`-verb / JSONL form. With `name` set this is a standalone
    /// `type:"slo"` record (benchmark artifacts); embedded in `stats` the
    /// discriminator is carried anyway and is harmless.
    pub fn to_json(&self, policy: &SloPolicy, name: Option<&str>) -> Json {
        let mut fields = vec![("type", Json::Str("slo".into()))];
        let name_owned;
        if let Some(n) = name {
            name_owned = n.to_string();
            fields.push(("name", Json::Str(name_owned)));
        }
        fields.extend(vec![
            ("window", Json::Str(self.window.clone())),
            ("objectives", policy.to_json()),
            ("total", Json::Int(self.total as i64)),
            ("good", Json::Int(self.good as i64)),
            ("availability", Json::Num(self.availability)),
            ("availability_burn", Json::Num(self.availability_burn)),
            ("fast_fraction", Json::Num(self.fast_fraction)),
            ("latency_burn", Json::Num(self.latency_burn)),
            ("breached", Json::Bool(self.breached)),
        ]);
        Json::obj(fields)
    }
}

/// Checks one `type:"slo"` JSON record against a burn ceiling. Returns the
/// record's `(name, availability_burn, latency_burn)` on success.
///
/// # Errors
/// A description when the record is malformed or a burn rate exceeds
/// `max_burn`.
pub fn check_slo_record(v: &Json, max_burn: f64) -> Result<(String, f64, f64), String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("slo")
        .to_string();
    let avail = v
        .get("availability_burn")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{name}: slo record missing `availability_burn`"))?;
    let lat = v
        .get("latency_burn")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{name}: slo record missing `latency_burn`"))?;
    if avail > max_burn {
        return Err(format!(
            "{name}: availability burn {avail:.2} exceeds {max_burn:.2} (availability {})",
            v.get("availability").and_then(Json::as_f64).unwrap_or(f64::NAN)
        ));
    }
    if lat > max_burn {
        return Err(format!(
            "{name}: latency burn {lat:.2} exceeds {max_burn:.2} (fast fraction {})",
            v.get("fast_fraction").and_then(Json::as_f64).unwrap_or(f64::NAN)
        ));
    }
    Ok((name, avail, lat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{bucket_index, NBUCKETS};

    #[test]
    fn empty_window_burns_nothing() {
        let r = SloPolicy::default().evaluate("delta", 0, 0, &vec![0; NBUCKETS]);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.availability_burn, 0.0);
        assert_eq!(r.latency_burn, 0.0);
        assert!(!r.breached);
    }

    #[test]
    fn availability_burn_is_error_rate_over_budget() {
        let p = SloPolicy { availability_target: 0.99, ..Default::default() };
        // 2% errors against a 1% budget: burn 2.
        let r = p.evaluate("cumulative", 98, 100, &[]);
        assert!((r.availability_burn - 2.0).abs() < 1e-9, "burn {}", r.availability_burn);
        assert!(r.breached);
        // Exactly on budget: burn 1, not breached (strictly above burns).
        let r = p.evaluate("cumulative", 99, 100, &[]);
        assert!((r.availability_burn - 1.0).abs() < 1e-9);
        assert!(!r.breached);
    }

    #[test]
    fn latency_burn_reads_bucket_counts() {
        let p = SloPolicy {
            latency_target: 0.9,
            latency_threshold_us: 100_000,
            ..Default::default()
        };
        let mut buckets = vec![0u64; NBUCKETS];
        buckets[bucket_index(1_000)] = 80; // fast
        buckets[bucket_index(1_000_000)] = 20; // slow
        let r = p.evaluate("cumulative", 100, 100, &buckets);
        assert!((r.fast_fraction - 0.8).abs() < 1e-9);
        assert!((r.latency_burn - 2.0).abs() < 1e-9); // 20% slow over a 10% budget
        assert!(r.breached);
    }

    #[test]
    fn slo_record_round_trips_through_checker() {
        let p = SloPolicy::default();
        let good = p.evaluate("cumulative", 100, 100, &[]).to_json(&p, Some("arm"));
        let (name, a, l) = check_slo_record(&good, 1.0).unwrap();
        assert_eq!(name, "arm");
        assert_eq!((a, l), (0.0, 0.0));
        let bad = p.evaluate("cumulative", 90, 100, &[]).to_json(&p, Some("arm"));
        assert!(check_slo_record(&bad, 1.0).is_err());
        assert!(check_slo_record(&bad, 100.0).is_ok());
        assert!(check_slo_record(&Json::obj(vec![]), 1.0).is_err());
    }
}
