//! CI validator for observability JSONL streams.
//!
//! Usage: `vn-obs-check <events.jsonl> [required-span-name ...]`
//!
//! Parses every line of the stream (non-zero exit on any malformed line),
//! checks the meta line carries a `schema_version`, and verifies that each
//! required span name appears either as a raw span event or in the
//! aggregated span table. Prints a one-line summary on success.

use std::collections::HashSet;
use std::process::ExitCode;
use valuenet_obs::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: vn-obs-check <events.jsonl> [required-span-name ...]");
        return ExitCode::from(2);
    };
    let required: Vec<&str> = args[1..].iter().map(String::as_str).collect();

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vn-obs-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut lines = 0usize;
    let mut spans: HashSet<String> = HashSet::new();
    let mut counters = 0usize;
    let mut saw_meta = false;
    let mut failed = false;

    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let record = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("vn-obs-check: {path}:{}: invalid JSON: {e}", lineno + 1);
                failed = true;
                continue;
            }
        };
        match record.get("type").and_then(Json::as_str) {
            Some("meta") | Some("checkpoint_meta") => {
                saw_meta = true;
                if record.get("schema_version").and_then(Json::as_f64).is_none() {
                    eprintln!(
                        "vn-obs-check: {path}:{}: meta line missing schema_version",
                        lineno + 1
                    );
                    failed = true;
                }
            }
            Some("span") | Some("span_agg") => {
                if let Some(name) = record.get("name").and_then(Json::as_str) {
                    spans.insert(name.to_string());
                } else {
                    eprintln!("vn-obs-check: {path}:{}: span record without name", lineno + 1);
                    failed = true;
                }
            }
            Some("counter") | Some("histogram") | Some("metric") | Some("bench")
            | Some("checkpoint_param") | Some("checkpoint_end") => counters += 1,
            Some(other) => {
                eprintln!("vn-obs-check: {path}:{}: unknown type {other:?}", lineno + 1);
                failed = true;
            }
            None => {
                eprintln!("vn-obs-check: {path}:{}: record without type field", lineno + 1);
                failed = true;
            }
        }
    }

    if lines == 0 {
        eprintln!("vn-obs-check: {path} is empty");
        failed = true;
    }
    if !saw_meta && lines > 0 {
        eprintln!("vn-obs-check: {path}: no meta line with schema_version");
        failed = true;
    }
    for name in &required {
        if !spans.contains(*name) {
            eprintln!("vn-obs-check: required span {name:?} not present in {path}");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!(
            "vn-obs-check: OK — {lines} lines, {} distinct spans, {counters} counter/histogram/metric records",
            spans.len()
        );
        ExitCode::SUCCESS
    }
}
