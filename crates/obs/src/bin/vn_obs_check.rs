//! CI validator for observability JSONL streams.
//!
//! Usage: `vn-obs-check <events.jsonl> [required-span-name ...]`
//!
//! Thin CLI over [`valuenet_obs::check::check_stream`]: parses every line
//! (non-zero exit on any malformed line), validates each record kind the
//! crate emits — spans, scalars, traces, profiles, SLO reports — fails on
//! unknown types *and* unknown `schema_version`s, and verifies that each
//! required span name appears either as a raw span event or in the
//! aggregated span table. Prints a one-line summary on success.

use std::process::ExitCode;
use valuenet_obs::check::check_stream;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: vn-obs-check <events.jsonl> [required-span-name ...]");
        return ExitCode::from(2);
    };
    let required: Vec<&str> = args[1..].iter().map(String::as_str).collect();

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vn-obs-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = check_stream(path, &text, &required);
    for err in &report.errors {
        eprintln!("vn-obs-check: {err}");
    }
    if report.ok() {
        println!("vn-obs-check: {}", report.summary());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
