//! CI gate on SLO burn rates.
//!
//! Usage: `vn-slo-check <file.json|file.jsonl> [max-burn]`
//!
//! Walks the document (or each JSONL line) for SLO reports — any object
//! carrying both `availability_burn` and `latency_burn`, wherever it is
//! nested (a `stats` verb dump, `BENCH_serve.json`, a bare `type:"slo"`
//! stream) — and exits nonzero when any burn rate exceeds `max-burn`
//! (default 1.0, i.e. the error budget is being consumed faster than
//! provisioned). Finding no SLO report at all is also a failure: a gate
//! that silently checks nothing is worse than no gate.

use std::process::ExitCode;
use valuenet_obs::json::Json;
use valuenet_obs::slo::check_slo_record;

/// Collects every object that looks like an SLO report, depth-first.
fn collect<'a>(v: &'a Json, out: &mut Vec<&'a Json>) {
    match v {
        Json::Obj(entries) => {
            if v.get("availability_burn").is_some() && v.get("latency_burn").is_some() {
                out.push(v);
            }
            for (_, child) in entries {
                collect(child, out);
            }
        }
        Json::Arr(items) => {
            for child in items {
                collect(child, out);
            }
        }
        _ => {}
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: vn-slo-check <file.json|file.jsonl> [max-burn]");
        return ExitCode::from(2);
    };
    let max_burn: f64 = match args.get(1).map(|s| s.parse()) {
        None => 1.0,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!("vn-slo-check: max-burn must be a number, got {:?}", args[1]);
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("vn-slo-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // JSONL and single-document files both reduce to "parse every non-empty
    // line-ish chunk": a pretty-printed single document has no per-line JSON,
    // so fall back to whole-file parse when line parsing yields nothing.
    let mut docs: Vec<Json> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(v) = Json::parse(line) {
            docs.push(v);
        }
    }
    if docs.is_empty() {
        match Json::parse(&text) {
            Ok(v) => docs.push(v),
            Err(e) => {
                eprintln!("vn-slo-check: {path}: invalid JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut reports: Vec<&Json> = Vec::new();
    for doc in &docs {
        collect(doc, &mut reports);
    }
    if reports.is_empty() {
        eprintln!("vn-slo-check: {path}: no SLO reports found");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for report in reports {
        match check_slo_record(report, max_burn) {
            Ok((name, avail, lat)) => println!(
                "vn-slo-check: {name}: availability burn {avail:.3}, latency burn {lat:.3} (max {max_burn:.2})"
            ),
            Err(e) => {
                eprintln!("vn-slo-check: BURN — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
