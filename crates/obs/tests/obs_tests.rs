//! Integration tests for the observability layer.
//!
//! The registry is process-global, so every test takes `GUARD` and calls
//! `reset()` to get a clean slate regardless of execution order.

use std::sync::Mutex;
use valuenet_obs as obs;
use valuenet_obs::json::Json;

static GUARD: Mutex<()> = Mutex::new(());

fn isolated() -> std::sync::MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    g
}

/// Histogram percentiles must agree with a naive sorted-vec oracle up to
/// bucket resolution: the reported midpoint has to land in the same bucket
/// as the oracle's nearest-rank value.
#[test]
fn histogram_percentiles_match_sorted_oracle() {
    let _g = isolated();
    static H: obs::Histogram = obs::Histogram::new("test.oracle");

    // Deterministic pseudo-random values spanning several octaves.
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut values: Vec<u64> = Vec::new();
    for _ in 0..10_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        values.push(x % 1_000_000);
    }
    for &v in &values {
        H.record(v);
    }
    let mut sorted = values.clone();
    sorted.sort_unstable();

    for &q in &[0.50, 0.90, 0.99] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let oracle = sorted[rank - 1];
        let reported = H.percentile(q);
        let (lo, hi) = obs::bucket_bounds(obs::bucket_index(oracle));
        assert!(
            reported >= lo as f64 && reported <= hi as f64,
            "p{} reported {reported} outside oracle bucket [{lo},{hi}) of value {oracle}",
            (q * 100.0) as u32,
        );
        // And the documented relative-error bound.
        let rel = (reported - oracle as f64).abs() / (oracle as f64).max(1.0);
        assert!(rel <= 0.125 + 1e-9, "p{q}: relative error {rel} > 12.5%");
    }
    assert_eq!(H.count(), 10_000);
    assert_eq!(H.sum(), values.iter().sum::<u64>());
}

/// Nested spans aggregate by full path, and the snapshot's tree order is
/// deterministic (siblings sorted by name) with correct parent/child depth.
#[test]
fn nested_spans_aggregate_by_path() {
    let _g = isolated();
    for _ in 0..3 {
        let _outer = obs::span("outer");
        {
            let _b = obs::span("beta");
        }
        {
            let _a = obs::span("alpha");
        }
        {
            let _a = obs::span("alpha");
        }
    }
    let snap = obs::snapshot();
    let paths: Vec<String> = snap.spans.iter().map(|s| s.path_string()).collect();
    assert_eq!(paths, vec!["outer", "outer/alpha", "outer/beta"]);
    assert_eq!(snap.span_named("outer").unwrap().count, 3);
    assert_eq!(snap.spans[1].count, 6, "outer/alpha entered twice per iteration");
    assert_eq!(snap.spans[2].count, 3);
    assert_eq!(snap.spans[0].depth(), 0);
    assert_eq!(snap.spans[1].depth(), 1);
    // A parent's total covers its children.
    assert!(snap.spans[0].total_ns >= snap.spans[1].total_ns);
}

/// The same span name under different parents is a different path.
#[test]
fn same_name_under_different_parents_is_distinct() {
    let _g = isolated();
    {
        let _p = obs::span("train");
        let _c = obs::span("forward");
    }
    {
        let _p = obs::span("eval");
        let _c = obs::span("forward");
    }
    let snap = obs::snapshot();
    let paths: Vec<String> = snap.spans.iter().map(|s| s.path_string()).collect();
    assert_eq!(paths, vec!["eval", "eval/forward", "train", "train/forward"]);
}

/// With observability disabled, nothing is recorded anywhere.
#[test]
fn disabled_path_records_nothing() {
    let _g = isolated();
    obs::set_enabled(false);
    static C: obs::Counter = obs::Counter::new("test.disabled_counter");
    static H: obs::Histogram = obs::Histogram::new("test.disabled_hist");
    {
        let _s = obs::span("test.disabled_span");
        C.add(7);
        H.record(7);
        obs::metric("test.disabled_metric", 0, 1.0);
    }
    obs::set_enabled(true);
    let snap = obs::snapshot();
    assert!(snap.span_named("test.disabled_span").is_none());
    assert_eq!(C.get(), 0);
    assert_eq!(H.count(), 0);
    assert!(snap.metrics.iter().all(|m| m.name != "test.disabled_metric"));
}

/// JSONL written by `finish` parses line-by-line, carries schema_version in
/// its meta line, and round-trips span aggregates, counters and metrics.
#[test]
fn jsonl_round_trips() {
    let _g = isolated();
    let dir = std::env::temp_dir().join(format!("vn_obs_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    let path_str = path.to_str().unwrap().to_string();

    obs::install(obs::Config {
        jsonl: Some(path_str.clone()),
        chrome_trace: None,
        summary: false,
        event_cap: 0,
    });
    obs::reset();

    static C: obs::Counter = obs::Counter::new("test.jsonl_counter");
    {
        let _s = obs::span("jsonl.outer");
        let _t = obs::span("jsonl.inner");
        C.add(41);
        C.add(1);
    }
    obs::metric("test.jsonl_metric", 5, 0.25);
    let snap = obs::finish();
    assert!(snap.span_named("jsonl.inner").is_some());

    let text = std::fs::read_to_string(&path).unwrap();
    let records: Vec<Json> =
        text.lines().map(|l| Json::parse(l).expect("every line parses")).collect();
    assert!(!records.is_empty());

    let meta = &records[0];
    assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
    assert!(meta.get("schema_version").and_then(Json::as_f64).is_some());

    let agg = records
        .iter()
        .find(|r| {
            r.get("type").and_then(Json::as_str) == Some("span_agg")
                && r.get("path").and_then(Json::as_str) == Some("jsonl.outer/jsonl.inner")
        })
        .expect("nested span_agg present");
    assert_eq!(agg.get("count").and_then(Json::as_f64), Some(1.0));

    let raw_events = records
        .iter()
        .filter(|r| r.get("type").and_then(Json::as_str) == Some("span"))
        .count();
    assert_eq!(raw_events, 2, "both raw span occurrences streamed");

    let counter = records
        .iter()
        .find(|r| {
            r.get("type").and_then(Json::as_str) == Some("counter")
                && r.get("name").and_then(Json::as_str) == Some("test.jsonl_counter")
        })
        .expect("counter line present");
    assert_eq!(counter.get("value").and_then(Json::as_f64), Some(42.0));

    let metric = records
        .iter()
        .find(|r| r.get("type").and_then(Json::as_str) == Some("metric"))
        .expect("metric line present");
    assert_eq!(metric.get("index").and_then(Json::as_f64), Some(5.0));
    assert_eq!(metric.get("value").and_then(Json::as_f64), Some(0.25));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The Chrome-trace export is one valid JSON document with an X event per
/// span occurrence.
#[test]
fn chrome_trace_is_valid_json() {
    let _g = isolated();
    // Requesting a trace path turns raw-event capture on; the file itself is
    // only written by `finish`, which this test does not call.
    obs::install(obs::Config {
        jsonl: None,
        chrome_trace: Some("/nonexistent/unused-trace.json".into()),
        summary: false,
        event_cap: 0,
    });
    obs::reset();
    {
        let _a = obs::span("trace.a");
        let _b = obs::span("trace.b");
    }
    let snap = obs::snapshot();
    let trace = Json::parse(&obs::chrome_trace(&snap)).expect("trace parses");
    let events = trace.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), 2);
    for e in complete {
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").and_then(Json::as_f64).is_some());
    }
}

/// The run report joins difficulty-class accuracy with stage latency.
#[test]
fn run_report_joins_accuracy_and_stages() {
    let _g = isolated();
    {
        let _s = obs::span("pipeline.translate");
    }
    let snap = obs::snapshot();
    let rows = vec![
        obs::DifficultyRow { label: "Easy".into(), correct: 8, total: 10 },
        obs::DifficultyRow { label: "Hard".into(), correct: 2, total: 10 },
    ];
    let dir = std::env::temp_dir().join(format!("vn_obs_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run_report.json");
    obs::write_run_report(path.to_str().unwrap(), &rows, &snap).unwrap();
    let report = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(report.get("schema_version").and_then(Json::as_f64).is_some());
    let ea = report.get("execution_accuracy").unwrap();
    assert_eq!(ea.get("overall").and_then(Json::as_f64), Some(0.5));
    let by = ea.get("by_difficulty").and_then(Json::as_arr).unwrap();
    assert_eq!(by.len(), 2);
    assert_eq!(by[0].get("accuracy").and_then(Json::as_f64), Some(0.8));
    let stages = report.get("stages").and_then(Json::as_arr).unwrap();
    assert!(stages
        .iter()
        .any(|s| s.get("path").and_then(Json::as_str) == Some("pipeline.translate")));
    let _ = std::fs::remove_dir_all(&dir);
}
