//! Pure admission-control, deadline and retry arithmetic.
//!
//! Everything here is clock-free and socket-free: times are absolute
//! milliseconds on the engine's monotonic epoch, supplied by the caller.
//! That makes the policies unit-testable without threads or sleeps — the
//! engine is just one caller of these functions with a real clock.

/// Bounded-queue admission: at or above `capacity` queued requests, new work
/// is *shed* with a typed overload rejection instead of stalling the client.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Maximum queued (not yet dequeued) requests.
    pub capacity: usize,
}

impl AdmissionPolicy {
    /// Whether a new request may enter a queue currently `depth` deep.
    /// Retried requests bypass admission (they already hold a slot), so this
    /// is consulted only at first submission.
    pub fn admit(&self, depth: usize) -> bool {
        depth < self.capacity
    }
}

/// A per-request deadline on the engine's millisecond epoch. `None` means
/// the request runs without a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at_ms: Option<u64>,
}

impl Deadline {
    /// No deadline.
    pub const NONE: Deadline = Deadline { at_ms: None };

    /// A deadline `budget_ms` after `now_ms`; `0` means no deadline.
    pub fn from_budget(now_ms: u64, budget_ms: u64) -> Deadline {
        if budget_ms == 0 {
            Deadline::NONE
        } else {
            Deadline { at_ms: Some(now_ms.saturating_add(budget_ms)) }
        }
    }

    /// Whether the deadline has passed at `now_ms`. Checked at every stage
    /// boundary and — crucially — at dequeue: a request that spent its whole
    /// budget queued is answered with a deadline error without wasting a
    /// worker on it.
    pub fn expired(&self, now_ms: u64) -> bool {
        match self.at_ms {
            Some(at) => now_ms >= at,
            None => false,
        }
    }

    /// Milliseconds left at `now_ms` (`None` = unbounded, `Some(0)` =
    /// expired).
    pub fn remaining_ms(&self, now_ms: u64) -> Option<u64> {
        self.at_ms.map(|at| at.saturating_sub(now_ms))
    }
}

/// Exponential retry backoff with a cap: attempt `n` (1-based) waits
/// `min(cap, base * 2^(n-1))` milliseconds before re-entering the queue.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the first try.
    pub max_retries: u32,
    /// First backoff delay.
    pub base_ms: u64,
    /// Backoff ceiling.
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// Backoff before retry attempt `attempt` (1-based). Saturates at
    /// `cap_ms` — the doubling must not overflow for large attempt numbers.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        let factor = 1u64.checked_shl(shift).unwrap_or(u64::MAX);
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }

    /// Whether another retry is allowed after `attempts` tries so far.
    pub fn allows_retry(&self, attempts: u32) -> bool {
        attempts <= self.max_retries
    }
}

/// Poisoned-request quarantine: a request whose processing has killed
/// `max_worker_kills` workers is rejected instead of being retried forever.
#[derive(Debug, Clone, Copy)]
pub struct QuarantinePolicy {
    /// Worker panics a single request may cause before it is rejected.
    pub max_worker_kills: u32,
}

impl QuarantinePolicy {
    /// Whether a request that has panicked `panics` workers is quarantined.
    pub fn quarantined(&self, panics: u32) -> bool {
        panics >= self.max_worker_kills
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_sheds_at_capacity() {
        let p = AdmissionPolicy { capacity: 2 };
        assert!(p.admit(0));
        assert!(p.admit(1));
        assert!(!p.admit(2));
        assert!(!p.admit(100));
        // Degenerate capacity 0 sheds everything.
        assert!(!AdmissionPolicy { capacity: 0 }.admit(0));
    }

    #[test]
    fn deadline_expires_exactly_at_budget() {
        let d = Deadline::from_budget(1000, 250);
        assert!(!d.expired(1000));
        assert!(!d.expired(1249));
        assert!(d.expired(1250));
        assert!(d.expired(u64::MAX));
        assert_eq!(d.remaining_ms(1100), Some(150));
        assert_eq!(d.remaining_ms(2000), Some(0));
    }

    #[test]
    fn deadline_already_expired_at_dequeue() {
        // A request with a 10 ms budget dequeued 50 ms later is dead on
        // arrival: the dequeue check must catch it before any stage runs.
        let enqueued_at = 500;
        let d = Deadline::from_budget(enqueued_at, 10);
        let dequeued_at = enqueued_at + 50;
        assert!(d.expired(dequeued_at));
    }

    #[test]
    fn zero_budget_means_no_deadline() {
        let d = Deadline::from_budget(123, 0);
        assert_eq!(d, Deadline::NONE);
        assert!(!d.expired(u64::MAX));
        assert_eq!(d.remaining_ms(u64::MAX), None);
    }

    #[test]
    fn backoff_sequence_doubles_then_caps() {
        let p = RetryPolicy { max_retries: 10, base_ms: 10, cap_ms: 100 };
        let seq: Vec<u64> = (1..=7).map(|a| p.backoff_ms(a)).collect();
        assert_eq!(seq, vec![10, 20, 40, 80, 100, 100, 100]);
    }

    #[test]
    fn backoff_is_overflow_safe() {
        let p = RetryPolicy { max_retries: u32::MAX, base_ms: u64::MAX / 2, cap_ms: u64::MAX };
        // 2^200 * base must saturate, not wrap.
        assert_eq!(p.backoff_ms(200), u64::MAX);
        assert_eq!(p.backoff_ms(u32::MAX), u64::MAX);
    }

    #[test]
    fn retry_budget_counts_attempts() {
        let p = RetryPolicy { max_retries: 2, base_ms: 1, cap_ms: 1 };
        assert!(p.allows_retry(1));
        assert!(p.allows_retry(2));
        assert!(!p.allows_retry(3));
    }

    #[test]
    fn quarantine_after_two_worker_kills() {
        let q = QuarantinePolicy { max_worker_kills: 2 };
        assert!(!q.quarantined(0));
        assert!(!q.quarantined(1));
        assert!(q.quarantined(2));
        assert!(q.quarantined(3));
    }
}
