//! Deterministic fault directives.
//!
//! A [`FaultSpec`] rides inside a `translate` request (servers only accept
//! it when started with `allow_fault_injection`) and tells the engine to
//! misbehave *reproducibly*: panic the worker at a named pipeline stage for
//! the first `panic_times` attempts, or stall a stage by a fixed delay.
//! Because the spec is part of the request, a fault case is replayable from
//! its seed alone — no global toggles, no timing races.
//!
//! Faults fire at stage *boundaries* (inside the pipeline's stage guard),
//! never while a lock is held, so an injected panic exercises the worker
//! respawn/retry/quarantine machinery without poisoning shared state.

use valuenet_core::Stage;
use valuenet_obs::json::Json;

/// What to break, where, and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Panic the worker when entering this stage…
    pub panic_stage: Option<Stage>,
    /// …on the first this-many attempts (later attempts run clean).
    pub panic_times: u32,
    /// Sleep when entering this stage…
    pub delay_stage: Option<Stage>,
    /// …for this many milliseconds.
    pub delay_ms: u64,
}

impl FaultSpec {
    /// True when the spec does nothing.
    pub fn is_noop(&self) -> bool {
        self.panic_stage.is_none() && self.delay_stage.is_none()
    }

    /// Parses the `fault` object of a request.
    ///
    /// # Errors
    /// A description of the malformed field.
    pub fn parse(v: &Json) -> Result<FaultSpec, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("`fault` must be an object".into());
        }
        let stage_field = |name: &str| -> Result<Option<Stage>, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Stage::from_label(s)
                    .map(Some)
                    .ok_or_else(|| format!("unknown stage `{s}` in `fault.{name}`")),
                Some(_) => Err(format!("`fault.{name}` must be a stage label string")),
            }
        };
        let int_field = |name: &str| -> Result<u64, String> {
            match v.get(name) {
                None | Some(Json::Null) => Ok(0),
                Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
                Some(_) => Err(format!("`fault.{name}` must be a non-negative integer")),
            }
        };
        let spec = FaultSpec {
            panic_stage: stage_field("panic_stage")?,
            panic_times: int_field("panic_times")?.min(u32::MAX as u64) as u32,
            delay_stage: stage_field("delay_stage")?,
            delay_ms: int_field("delay_ms")?,
        };
        if spec.panic_stage.is_some() && spec.panic_times == 0 {
            return Err("`fault.panic_stage` requires `fault.panic_times` >= 1".into());
        }
        Ok(spec)
    }

    /// Renders the wire form (for harness clients).
    pub fn render(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(s) = self.panic_stage {
            fields.push(("panic_stage".into(), Json::Str(s.label().into())));
            fields.push(("panic_times".into(), Json::Int(self.panic_times as i64)));
        }
        if let Some(s) = self.delay_stage {
            fields.push(("delay_stage".into(), Json::Str(s.label().into())));
            fields.push(("delay_ms".into(), Json::Int(self.delay_ms as i64)));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let spec = FaultSpec {
            panic_stage: Some(Stage::EncodeDecode),
            panic_times: 2,
            delay_stage: Some(Stage::Preprocess),
            delay_ms: 15,
        };
        assert_eq!(FaultSpec::parse(&spec.render()).unwrap(), spec);
        let noop = FaultSpec::default();
        assert!(noop.is_noop());
        assert_eq!(FaultSpec::parse(&noop.render()).unwrap(), noop);
    }

    #[test]
    fn rejects_malformed_specs() {
        for line in [
            r#"{"panic_stage":"warp_drive","panic_times":1}"#,
            r#"{"panic_stage":"encode_decode"}"#,
            r#"{"delay_stage":7}"#,
            r#"{"delay_ms":-3}"#,
            r#"[1]"#,
        ] {
            let v = Json::parse(line).unwrap();
            assert!(FaultSpec::parse(&v).is_err(), "accepted: {line}");
        }
    }
}
