//! The line-delimited JSON serving protocol.
//!
//! One request per line, one response line per request, over a local
//! stream socket. The JSON layer is `valuenet-obs`'s own (the repository's
//! zero-dependency writer/parser) so the server adds no new dependencies.
//!
//! ```text
//! → {"id":1,"verb":"translate","db":"student_pets","question":"How many pets?","deadline_ms":500}
//! ← {"schema_version":1,"id":1,"ok":true,"sql":"SELECT ...","rows":[["3"]],"values":[],"latency_us":812,"retries":0,"degraded":false}
//! → {"id":2,"verb":"stats"}
//! ← {"schema_version":1,"id":2,"ok":true,"stats":{...}}
//! → not json at all
//! ← {"schema_version":1,"id":null,"ok":false,"error":{"kind":"bad_request","detail":"..."}}
//! ```
//!
//! The failure taxonomy is closed: every response either carries `ok:true`
//! or one of the [`ErrorKind`] discriminators, so clients can dispatch on
//! `error.kind` without parsing prose.

use crate::fault::FaultSpec;
use valuenet_obs::json::Json;
use valuenet_obs::trace::RequestTrace;
use valuenet_obs::RUN_REPORT_SCHEMA_VERSION;

/// Typed rejection classes — the protocol's failure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame: not JSON, not an object, missing/ill-typed fields,
    /// an unknown verb, or a fault-injection request on a server that does
    /// not allow it.
    BadRequest,
    /// The named database is not registered.
    UnknownDb,
    /// Admission control shed the request (queue at capacity).
    Overload,
    /// The per-request deadline expired (in queue or at a stage boundary).
    DeadlineExceeded,
    /// The request killed too many workers and is quarantined.
    Quarantined,
    /// The pipeline ran but produced no executable SQL.
    TranslateFailed,
    /// The server is shutting down.
    ShuttingDown,
    /// Worker-side failure that survived retries, or a harness-visible
    /// invariant breach (e.g. a reply channel that never completed).
    Internal,
}

impl ErrorKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownDb => "unknown_db",
            ErrorKind::Overload => "overload",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Quarantined => "quarantined",
            ErrorKind::TranslateFailed => "translate_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire label.
    pub fn from_label(s: &str) -> Option<ErrorKind> {
        [
            ErrorKind::BadRequest,
            ErrorKind::UnknownDb,
            ErrorKind::Overload,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Quarantined,
            ErrorKind::TranslateFailed,
            ErrorKind::ShuttingDown,
            ErrorKind::Internal,
        ]
        .into_iter()
        .find(|k| k.label() == s)
    }
}

/// A typed request rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Taxonomy class.
    pub kind: ErrorKind,
    /// Human-readable detail (never required for dispatch).
    pub detail: String,
}

impl ServeError {
    /// Convenience constructor.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        ServeError { kind, detail: detail.into() }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.detail)
    }
}

impl std::error::Error for ServeError {}

/// The per-request trace digest carried on every traced response (success
/// or failure): queue wait, attempt count, and total time per pipeline
/// stage. The full span tree stays in the flight recorder, retrievable by
/// `trace_id` through the `trace` verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// The request's trace id (key into the flight recorder).
    pub trace_id: u64,
    /// Summed queue wait across all attempts, µs.
    pub queue_wait_us: u64,
    /// Worker attempts the request took (1 = no retries).
    pub attempts: u32,
    /// Decode-batch cohort size of the attempt that produced the reply
    /// (1 = decoded alone, 0 = the request never reached the decode).
    pub batch_size: u32,
    /// Total duration per stage label, aggregated across attempts, in
    /// first-execution order.
    pub stages: Vec<(String, u64)>,
}

impl TraceSummary {
    /// Digest of a finished [`RequestTrace`].
    pub fn from_trace(t: &RequestTrace) -> TraceSummary {
        TraceSummary {
            trace_id: t.trace_id.0,
            queue_wait_us: t.queue_wait_us(),
            attempts: t.attempts.len() as u32,
            batch_size: t.batch_size,
            stages: t.stage_totals().iter().map(|&(s, d)| (s.to_string(), d)).collect(),
        }
    }

    /// The wire form (the `trace` field of a response).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_id", Json::Int(self.trace_id as i64)),
            ("queue_wait_us", Json::Int(self.queue_wait_us as i64)),
            ("attempts", Json::Int(self.attempts as i64)),
            ("batch_size", Json::Int(self.batch_size as i64)),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|(s, d)| (s.clone(), Json::Int(*d as i64)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the wire form. `None` when `v` is not a trace object.
    pub fn from_json(v: &Json) -> Option<TraceSummary> {
        let trace_id = v.get("trace_id").and_then(Json::as_f64)? as u64;
        let stages = match v.get("stages") {
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(k, d)| Some((k.clone(), d.as_f64()? as u64)))
                .collect::<Option<Vec<_>>>()?,
            _ => Vec::new(),
        };
        Some(TraceSummary {
            trace_id,
            queue_wait_us: v.get("queue_wait_us").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            attempts: v.get("attempts").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            batch_size: v.get("batch_size").and_then(Json::as_f64).unwrap_or(0.0) as u32,
            stages,
        })
    }
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Translate a question against a registered database.
    Translate {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<i64>,
        /// Database name (`db_id`).
        db: String,
        /// The natural-language question.
        question: String,
        /// Per-request deadline override in milliseconds (`None` = server
        /// default, `Some(0)` = no deadline).
        deadline_ms: Option<u64>,
        /// Gold value options (ValueNet-light oracle mode only).
        gold_values: Option<Vec<String>>,
        /// Deterministic fault directives (accepted only when the server
        /// was started with fault injection allowed).
        fault: Option<FaultSpec>,
    },
    /// Serving statistics (queue depth, shed count, per-stage percentiles,
    /// SLO burn rates).
    Stats {
        /// Correlation id.
        id: Option<i64>,
        /// `true` = interval semantics: counters and histograms since the
        /// previous delta-stats call (snapshot-and-diff). `false` (the
        /// default) keeps the cumulative-since-start behaviour.
        delta: bool,
    },
    /// Flight-recorder dump: retained request traces with full span trees.
    Trace {
        /// Correlation id.
        id: Option<i64>,
        /// Return only the trace with this trace id.
        trace_id: Option<u64>,
        /// Return only the newest this-many traces.
        last: Option<usize>,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: Option<i64>,
    },
    /// Graceful shutdown: drain, stop workers, close the socket.
    Shutdown {
        /// Correlation id.
        id: Option<i64>,
    },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    /// [`ErrorKind::BadRequest`] with a parse detail on any malformed frame.
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let bad = |detail: String| ServeError::new(ErrorKind::BadRequest, detail);
        let v = Json::parse(line.trim()).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        if !matches!(v, Json::Obj(_)) {
            return Err(bad("request must be a JSON object".into()));
        }
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(Json::Int(i)) => Some(*i),
            Some(_) => return Err(bad("`id` must be an integer".into())),
        };
        let verb = v
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field `verb`".into()))?;
        match verb {
            "translate" => {
                let db = v
                    .get("db")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("translate requires string field `db`".into()))?
                    .to_string();
                let question = v
                    .get("question")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("translate requires string field `question`".into()))?
                    .to_string();
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
                    Some(_) => {
                        return Err(bad("`deadline_ms` must be a non-negative integer".into()))
                    }
                };
                let gold_values = match v.get("gold_values") {
                    None | Some(Json::Null) => None,
                    Some(Json::Arr(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for it in items {
                            match it.as_str() {
                                Some(s) => out.push(s.to_string()),
                                None => {
                                    return Err(bad("`gold_values` must be strings".into()))
                                }
                            }
                        }
                        Some(out)
                    }
                    Some(_) => return Err(bad("`gold_values` must be an array".into())),
                };
                let fault = match v.get("fault") {
                    None | Some(Json::Null) => None,
                    Some(f) => Some(FaultSpec::parse(f).map_err(bad)?),
                };
                Ok(Request::Translate { id, db, question, deadline_ms, gold_values, fault })
            }
            "stats" => {
                let delta = match v.get("window") {
                    None | Some(Json::Null) => false,
                    Some(Json::Str(s)) if s == "delta" => true,
                    Some(Json::Str(s)) if s == "cumulative" => false,
                    Some(_) => {
                        return Err(bad("`window` must be \"cumulative\" or \"delta\"".into()))
                    }
                };
                Ok(Request::Stats { id, delta })
            }
            "trace" => {
                let trace_id = match v.get("trace_id") {
                    None | Some(Json::Null) => None,
                    Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
                    Some(_) => {
                        return Err(bad("`trace_id` must be a non-negative integer".into()))
                    }
                };
                let last = match v.get("last") {
                    None | Some(Json::Null) => None,
                    Some(Json::Int(i)) if *i >= 0 => Some(*i as usize),
                    Some(_) => return Err(bad("`last` must be a non-negative integer".into())),
                };
                Ok(Request::Trace { id, trace_id, last })
            }
            "ping" => Ok(Request::Ping { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(bad(format!("unknown verb `{other}`"))),
        }
    }

    /// The request's correlation id.
    pub fn id(&self) -> Option<i64> {
        match self {
            Request::Translate { id, .. }
            | Request::Stats { id, .. }
            | Request::Trace { id, .. }
            | Request::Ping { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// A successful translation, as serialised on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Translated {
    /// The synthesized SQL (`None` never reaches the wire as `ok:true`; the
    /// engine maps it to [`ErrorKind::TranslateFailed`]).
    pub sql: String,
    /// Executed result rows, each datum rendered as text.
    pub rows: Vec<Vec<String>>,
    /// Whether row order is semantically meaningful.
    pub ordered: bool,
    /// Value texts selected by the decoder, in pointer order.
    pub values: Vec<String>,
    /// End-to-end latency (admission to reply), microseconds.
    pub latency_us: u64,
    /// Retry attempts the request needed.
    pub retries: u32,
    /// Whether the response was produced on the scalar degradation path.
    pub degraded: bool,
    /// Per-request trace digest (absent only when the engine was started
    /// with trace recording off).
    pub trace: Option<TraceSummary>,
}

/// A response frame.
#[derive(Debug, Clone)]
pub enum Response {
    /// Successful translation.
    Translated {
        /// Echoed correlation id.
        id: Option<i64>,
        /// Payload.
        body: Box<Translated>,
    },
    /// Statistics payload (already JSON).
    Stats {
        /// Echoed correlation id.
        id: Option<i64>,
        /// The statistics object.
        stats: Json,
    },
    /// Flight-recorder dump payload (already JSON).
    Traces {
        /// Echoed correlation id.
        id: Option<i64>,
        /// `{recorded, retained, traces:[...]}`.
        traces: Json,
    },
    /// Liveness reply.
    Pong {
        /// Echoed correlation id.
        id: Option<i64>,
    },
    /// Shutdown acknowledged; the connection will close.
    ShutdownAck {
        /// Echoed correlation id.
        id: Option<i64>,
    },
    /// Typed failure.
    Error {
        /// Echoed correlation id (absent when the frame was unparseable).
        id: Option<i64>,
        /// The rejection.
        error: ServeError,
        /// Per-request trace digest — present for failures of *admitted*
        /// requests (deadline, quarantine, retry exhaustion); absent for
        /// synchronous rejections (shed, bad request) that never got a
        /// trace.
        trace: Option<TraceSummary>,
    },
}

fn id_json(id: Option<i64>) -> Json {
    match id {
        Some(i) => Json::Int(i),
        None => Json::Null,
    }
}

impl Response {
    /// Renders the single-line wire form (no trailing newline), stamped
    /// with the repository-wide `schema_version` envelope.
    pub fn render(&self) -> String {
        let mut fields: Vec<(String, Json)> =
            vec![("schema_version".into(), Json::Int(RUN_REPORT_SCHEMA_VERSION))];
        match self {
            Response::Translated { id, body } => {
                fields.push(("id".into(), id_json(*id)));
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("sql".into(), Json::Str(body.sql.clone())));
                fields.push((
                    "rows".into(),
                    Json::Arr(
                        body.rows
                            .iter()
                            .map(|r| {
                                Json::Arr(r.iter().map(|d| Json::Str(d.clone())).collect())
                            })
                            .collect(),
                    ),
                ));
                fields.push(("ordered".into(), Json::Bool(body.ordered)));
                fields.push((
                    "values".into(),
                    Json::Arr(body.values.iter().map(|s| Json::Str(s.clone())).collect()),
                ));
                fields.push(("latency_us".into(), Json::Int(body.latency_us as i64)));
                fields.push(("retries".into(), Json::Int(body.retries as i64)));
                fields.push(("degraded".into(), Json::Bool(body.degraded)));
                if let Some(t) = &body.trace {
                    fields.push(("trace".into(), t.to_json()));
                }
            }
            Response::Stats { id, stats } => {
                fields.push(("id".into(), id_json(*id)));
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("stats".into(), stats.clone()));
            }
            Response::Traces { id, traces } => {
                fields.push(("id".into(), id_json(*id)));
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("traces".into(), traces.clone()));
            }
            Response::Pong { id } => {
                fields.push(("id".into(), id_json(*id)));
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("pong".into(), Json::Bool(true)));
            }
            Response::ShutdownAck { id } => {
                fields.push(("id".into(), id_json(*id)));
                fields.push(("ok".into(), Json::Bool(true)));
                fields.push(("shutdown".into(), Json::Bool(true)));
            }
            Response::Error { id, error, trace } => {
                fields.push(("id".into(), id_json(*id)));
                fields.push(("ok".into(), Json::Bool(false)));
                fields.push((
                    "error".into(),
                    Json::obj(vec![
                        ("kind", Json::Str(error.kind.label().into())),
                        ("detail", Json::Str(error.detail.clone())),
                    ]),
                ));
                if let Some(t) = trace {
                    fields.push(("trace".into(), t.to_json()));
                }
            }
        }
        Json::Obj(fields).render()
    }

    /// Parses a response line (client side; used by the harness and smoke
    /// driver).
    ///
    /// # Errors
    /// A description of the malformed response.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line.trim()).map_err(|e| format!("invalid response JSON: {e}"))?;
        let id = match v.get("id") {
            Some(Json::Int(i)) => Some(*i),
            _ => None,
        };
        let ok = matches!(v.get("ok"), Some(Json::Bool(true)));
        let trace = v.get("trace").and_then(TraceSummary::from_json);
        if !ok {
            let err = v.get("error").ok_or("error response without `error`")?;
            let kind = err
                .get("kind")
                .and_then(Json::as_str)
                .and_then(ErrorKind::from_label)
                .ok_or("error response with unknown `error.kind`")?;
            let detail =
                err.get("detail").and_then(Json::as_str).unwrap_or_default().to_string();
            return Ok(Response::Error { id, error: ServeError { kind, detail }, trace });
        }
        if let Some(stats) = v.get("stats") {
            return Ok(Response::Stats { id, stats: stats.clone() });
        }
        if let Some(traces) = v.get("traces") {
            return Ok(Response::Traces { id, traces: traces.clone() });
        }
        if v.get("pong").is_some() {
            return Ok(Response::Pong { id });
        }
        if v.get("shutdown").is_some() {
            return Ok(Response::ShutdownAck { id });
        }
        let sql = v
            .get("sql")
            .and_then(Json::as_str)
            .ok_or("ok response without `sql`/`stats`/`pong`")?
            .to_string();
        let rows = match v.get("rows") {
            Some(Json::Arr(rows)) => rows
                .iter()
                .map(|r| match r {
                    Json::Arr(cells) => cells
                        .iter()
                        .map(|c| c.as_str().map(str::to_string).ok_or("non-string cell"))
                        .collect::<Result<Vec<_>, _>>(),
                    _ => Err("non-array row"),
                })
                .collect::<Result<Vec<_>, _>>()
                .map_err(str::to_string)?,
            _ => return Err("ok response without `rows`".into()),
        };
        let values = match v.get("values") {
            Some(Json::Arr(vs)) => vs
                .iter()
                .map(|c| c.as_str().map(str::to_string).ok_or("non-string value".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(Response::Translated {
            id,
            body: Box::new(Translated {
                sql,
                rows,
                ordered: matches!(v.get("ordered"), Some(Json::Bool(true))),
                values,
                latency_us: v.get("latency_us").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                retries: v.get("retries").and_then(Json::as_f64).unwrap_or(0.0) as u32,
                degraded: matches!(v.get("degraded"), Some(Json::Bool(true))),
                trace,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_translate_request() {
        let r = Request::parse(
            r#"{"id":7,"verb":"translate","db":"d","question":"q?","deadline_ms":250}"#,
        )
        .unwrap();
        match r {
            Request::Translate { id, db, question, deadline_ms, gold_values, fault } => {
                assert_eq!(id, Some(7));
                assert_eq!(db, "d");
                assert_eq!(question, "q?");
                assert_eq!(deadline_ms, Some(250));
                assert!(gold_values.is_none());
                assert!(fault.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_typed_bad_requests() {
        for line in [
            "not json at all",
            "[1,2,3]",
            "{}",
            r#"{"verb":"fly"}"#,
            r#"{"verb":"translate","db":"d"}"#,
            r#"{"id":"x","verb":"ping"}"#,
            r#"{"verb":"translate","db":"d","question":"q","deadline_ms":-1}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "line: {line}");
        }
    }

    #[test]
    fn response_round_trips() {
        let trace = TraceSummary {
            trace_id: 42,
            queue_wait_us: 17,
            attempts: 2,
            batch_size: 3,
            stages: vec![("preprocess".into(), 5), ("execute".into(), 11)],
        };
        let resp = Response::Translated {
            id: Some(3),
            body: Box::new(Translated {
                sql: "SELECT \"x\" FROM t".into(),
                rows: vec![vec!["1".into(), "a b".into()]],
                ordered: true,
                values: vec!["France".into()],
                latency_us: 812,
                retries: 1,
                degraded: true,
                trace: Some(trace.clone()),
            }),
        };
        let line = resp.render();
        assert!(line.starts_with("{\"schema_version\":"));
        match Response::parse(&line).unwrap() {
            Response::Translated { id, body } => {
                assert_eq!(id, Some(3));
                assert_eq!(body.sql, "SELECT \"x\" FROM t");
                assert_eq!(body.rows, vec![vec!["1".to_string(), "a b".to_string()]]);
                assert!(body.ordered && body.degraded);
                assert_eq!((body.latency_us, body.retries), (812, 1));
                assert_eq!(body.values, vec!["France".to_string()]);
                assert_eq!(body.trace, Some(trace.clone()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = Response::Error {
            id: None,
            error: ServeError::new(ErrorKind::DeadlineExceeded, "expired"),
            trace: Some(trace.clone()),
        };
        match Response::parse(&err.render()).unwrap() {
            Response::Error { id, error, trace: t } => {
                assert_eq!(id, None);
                assert_eq!(error.kind, ErrorKind::DeadlineExceeded);
                assert_eq!(error.detail, "expired");
                assert_eq!(t, Some(trace));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn stats_window_and_trace_verbs_parse() {
        match Request::parse(r#"{"id":1,"verb":"stats"}"#).unwrap() {
            Request::Stats { id, delta } => assert_eq!((id, delta), (Some(1), false)),
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse(r#"{"id":1,"verb":"stats","window":"delta"}"#).unwrap() {
            Request::Stats { delta, .. } => assert!(delta),
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse(r#"{"id":1,"verb":"stats","window":"cumulative"}"#).unwrap() {
            Request::Stats { delta, .. } => assert!(!delta),
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            Request::parse(r#"{"verb":"stats","window":"sliding"}"#).unwrap_err().kind,
            ErrorKind::BadRequest
        );
        match Request::parse(r#"{"id":2,"verb":"trace","trace_id":9,"last":4}"#).unwrap() {
            Request::Trace { id, trace_id, last } => {
                assert_eq!((id, trace_id, last), (Some(2), Some(9), Some(4)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match Request::parse(r#"{"verb":"trace"}"#).unwrap() {
            Request::Trace { trace_id, last, .. } => {
                assert_eq!((trace_id, last), (None, None));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            Request::parse(r#"{"verb":"trace","trace_id":-1}"#).unwrap_err().kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn error_kind_labels_round_trip() {
        for k in [
            ErrorKind::BadRequest,
            ErrorKind::UnknownDb,
            ErrorKind::Overload,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Quarantined,
            ErrorKind::TranslateFailed,
            ErrorKind::ShuttingDown,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_label(k.label()), Some(k));
        }
    }
}
