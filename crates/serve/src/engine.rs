//! The serving engine: a bounded-queue worker pool around one loaded
//! [`Pipeline`].
//!
//! Request lifecycle:
//!
//! ```text
//! submit ──admission──▶ queue ──dequeue──▶ worker attempt ──▶ reply
//!            │(shed)      │(deadline)        │catch_unwind
//!            ▼            ▼                  ▼panic
//!         Overload   DeadlineExceeded   quarantine? ──yes──▶ Quarantined
//!                                          │no
//!                                          ▼
//!                               backoff + requeue (degraded scalar path),
//!                               worker respawns itself
//! ```
//!
//! Robustness invariants the fault harness asserts:
//!
//! * **Shed, don't stall** — a full queue rejects immediately with a typed
//!   [`ErrorKind::Overload`]; nothing blocks the socket thread.
//! * **Deadlines are enforced at dequeue and at every pipeline stage
//!   boundary** (via [`Pipeline::try_translate_guarded`]), so an expired
//!   request never occupies a worker for a full translation.
//! * **Panic isolation** — a worker panic (injected or real) is caught,
//!   the worker thread is replaced, and the request either retries with
//!   exponential backoff on the scalar degradation path or — after
//!   [`QuarantinePolicy::max_worker_kills`] kills — is quarantined.
//! * **Every admitted request is answered exactly once**; workers only
//!   exit on shutdown or panic-respawn, so no job is silently dropped.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::admission::{AdmissionPolicy, Deadline, QuarantinePolicy, RetryPolicy};
use crate::fault::FaultSpec;
use crate::protocol::{ErrorKind, Response, ServeError, Translated, TraceSummary};
use valuenet_core::{Pipeline, PipelineError, PreparedRequest, Stage, StageTimings, ValueNetModel};
use valuenet_obs::json::Json;
use valuenet_obs::trace::{install_ctx, AttemptTrace, RequestTrace, SpanCtx};
use valuenet_obs::{bucket_index, percentile_from_counts, FlightRecorder, SloPolicy, NBUCKETS};
use valuenet_storage::Database;

/// Worker threads are named with this prefix; the quiet panic hook uses it
/// to suppress the default panic banner for isolated (caught) panics.
const WORKER_PREFIX: &str = "vn-serve-worker";

// Tracing mirrors of the always-on engine stats: when the obs layer is
// enabled (OBS=1 / OBS_JSONL), shed/deadline/panic totals appear in the
// span summary and each attempt runs under a `serve.request` span.
static OBS_SHED: valuenet_obs::Counter = valuenet_obs::Counter::new("serve.shed");
static OBS_DEADLINE_MISSED: valuenet_obs::Counter =
    valuenet_obs::Counter::new("serve.deadline_missed");
static OBS_WORKER_PANICS: valuenet_obs::Counter =
    valuenet_obs::Counter::new("serve.worker_panics");
static OBS_QUARANTINED: valuenet_obs::Counter = valuenet_obs::Counter::new("serve.quarantined");

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads.
    pub workers: usize,
    /// Bounded-queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Default per-request deadline budget in milliseconds (`0` = none);
    /// requests may override it.
    pub default_deadline_ms: u64,
    /// Longest accepted question, in characters.
    pub max_question_chars: usize,
    /// Retry/backoff policy for panicked requests.
    pub retry: RetryPolicy,
    /// Poisoned-request quarantine policy.
    pub quarantine: QuarantinePolicy,
    /// Whether requests may carry [`FaultSpec`] directives (harness only).
    pub allow_fault_injection: bool,
    /// Flight-recorder capacity (retained request traces, split between
    /// clean and terminal-failure rings).
    pub flight_capacity: usize,
    /// Service-level objectives evaluated by the `stats` verb.
    pub slo: SloPolicy,
    /// Whether per-request traces are recorded (always-on default; the
    /// overhead benchmark's untraced arm is the only intended off-switch).
    pub record_traces: bool,
    /// Cross-request batching window in µs (`0` = decode every request
    /// alone, the pre-batching behaviour). With a window, a worker that
    /// dequeues a request keeps collecting concurrently queued requests for
    /// up to this long and decodes them in one fused pass.
    pub batch_window_us: u64,
    /// Most requests a single decode batch may carry; reaching it flushes
    /// the batch before the window expires.
    pub batch_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 0,
            max_question_chars: 8192,
            retry: RetryPolicy { max_retries: 2, base_ms: 10, cap_ms: 200 },
            quarantine: QuarantinePolicy { max_worker_kills: 2 },
            allow_fault_injection: false,
            flight_capacity: 256,
            slo: SloPolicy::default(),
            record_traces: true,
            batch_window_us: 0,
            batch_max: 8,
        }
    }
}

/// A translate submission (the engine-side mirror of the protocol's
/// `translate` verb).
#[derive(Debug, Clone, Default)]
pub struct TranslateJob {
    /// Correlation id, echoed in the response.
    pub id: Option<i64>,
    /// Database name.
    pub db: String,
    /// The question.
    pub question: String,
    /// Deadline budget override (`None` = server default, `Some(0)` = none).
    pub deadline_ms: Option<u64>,
    /// Gold value options (ValueNet-light).
    pub gold_values: Option<Vec<String>>,
    /// Fault directives (rejected unless the server allows injection).
    pub fault: Option<FaultSpec>,
}

/// One queued request attempt.
struct Job {
    id: Option<i64>,
    db: String,
    question: String,
    deadline: Deadline,
    gold_values: Option<Vec<String>>,
    fault: Option<FaultSpec>,
    reply: mpsc::Sender<Response>,
    /// Submission time (µs on the engine epoch) — end-to-end latency base.
    submitted_us: u64,
    /// Last (re-)enqueue time, for the queue-wait histogram.
    enqueued_us: u64,
    /// Earliest dequeue time (ms) — retry backoff.
    not_before_ms: u64,
    /// Worker panics this request has caused so far.
    panics: u32,
    /// Whether the next attempt runs on the scalar degradation path.
    degraded: bool,
    /// The request's trace, carried across retries so stage events from a
    /// panicked attempt and its degraded retry land in one span tree.
    /// `None` only when the engine runs with trace recording off.
    trace: Option<RequestTrace>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
    live_workers: usize,
    spawned_total: u64,
}

/// An always-on latency histogram (the obs `Histogram` no-ops when tracing
/// is disabled, but the `stats` verb must work regardless), sharing the obs
/// crate's bucket layout and percentile arithmetic.
struct ServeHist {
    counts: [AtomicU64; NBUCKETS],
}

impl ServeHist {
    fn new() -> Self {
        ServeHist { counts: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn record_us(&self, us: u64) {
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    fn counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Percentile summary of a bucket-count vector (cumulative snapshot or
    /// a delta window — same arithmetic).
    fn json_from_counts(counts: &[u64]) -> Json {
        let total: u64 = counts.iter().sum();
        Json::obj(vec![
            ("count", Json::Int(total as i64)),
            ("p50_us", Json::Num(percentile_from_counts(counts, 0.50))),
            ("p90_us", Json::Num(percentile_from_counts(counts, 0.90))),
            ("p99_us", Json::Num(percentile_from_counts(counts, 0.99))),
        ])
    }
}

/// Always-on serving counters and per-stage latency histograms, surfaced by
/// the protocol's `stats` verb.
pub struct EngineStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    retries: AtomicU64,
    degraded_completions: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    // Rejections, by taxonomy class.
    shed: AtomicU64,
    bad_request: AtomicU64,
    unknown_db: AtomicU64,
    deadline_missed: AtomicU64,
    translate_failed: AtomicU64,
    quarantined: AtomicU64,
    internal: AtomicU64,
    shutting_down: AtomicU64,
    // Latencies (µs).
    total: ServeHist,
    queue_wait: ServeHist,
    stage_hists: [ServeHist; Stage::ALL.len()],
    // Cross-request batching (all zero while batching is disabled; degraded
    // scalar retries decode alone and are not counted as batches).
    batches: AtomicU64,
    batch_members: AtomicU64,
    batch_window_flushes: AtomicU64,
    batch_size_flushes: AtomicU64,
    batch_occupancy: ServeHist,
}

impl EngineStats {
    fn new() -> Self {
        EngineStats {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degraded_completions: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            bad_request: AtomicU64::new(0),
            unknown_db: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            translate_failed: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            shutting_down: AtomicU64::new(0),
            total: ServeHist::new(),
            queue_wait: ServeHist::new(),
            stage_hists: std::array::from_fn(|_| ServeHist::new()),
            batches: AtomicU64::new(0),
            batch_members: AtomicU64::new(0),
            batch_window_flushes: AtomicU64::new(0),
            batch_size_flushes: AtomicU64::new(0),
            batch_occupancy: ServeHist::new(),
        }
    }

    fn count_rejection(&self, kind: ErrorKind) {
        match kind {
            ErrorKind::Overload => OBS_SHED.add(1),
            ErrorKind::DeadlineExceeded => OBS_DEADLINE_MISSED.add(1),
            ErrorKind::Quarantined => OBS_QUARANTINED.add(1),
            _ => {}
        }
        let c = match kind {
            ErrorKind::Overload => &self.shed,
            ErrorKind::BadRequest => &self.bad_request,
            ErrorKind::UnknownDb => &self.unknown_db,
            ErrorKind::DeadlineExceeded => &self.deadline_missed,
            ErrorKind::TranslateFailed => &self.translate_failed,
            ErrorKind::Quarantined => &self.quarantined,
            ErrorKind::Internal => &self.internal,
            ErrorKind::ShuttingDown => &self.shutting_down,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn record_stages(&self, t: &StageTimings) {
        let us = [
            t.pre_processing,
            t.value_lookup,
            t.encoder_decoder,
            t.post_processing,
            t.query_execution,
        ];
        for (hist, d) in self.stage_hists.iter().zip(us) {
            hist.record_us(d.as_micros() as u64);
        }
    }

    /// Number of requests shed by admission control.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Number of worker panics caught (injected or real).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Number of replacement workers spawned after panics.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Number of requests answered successfully.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Number of deadline rejections (queued or mid-pipeline).
    pub fn deadline_missed(&self) -> u64 {
        self.deadline_missed.load(Ordering::Relaxed)
    }

    /// Number of quarantined (poisoned) requests.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Number of decode batches formed (0 while batching is disabled).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Total requests carried by those batches; `batch_members / batches`
    /// is the mean batch occupancy.
    pub fn batch_members(&self) -> u64 {
        self.batch_members.load(Ordering::Relaxed)
    }

    /// Bucket counts of the batch-occupancy histogram (obs bucket layout —
    /// feed to `valuenet_obs::percentile_from_counts`).
    pub fn batch_occupancy_counts(&self) -> Vec<u64> {
        self.batch_occupancy.counts()
    }

    fn record_batch(&self, occupancy: usize, size_flush: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_members.fetch_add(occupancy as u64, Ordering::Relaxed);
        self.batch_occupancy.record_us(occupancy as u64);
        let c = if size_flush { &self.batch_size_flushes } else { &self.batch_window_flushes };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// A coherent copy of every monotonic counter and histogram — the unit
    /// of the `stats` verb's snapshot-and-diff delta windows.
    fn window(&self) -> StatsWindow {
        StatsWindow {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded_completions: self.degraded_completions.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            unknown_db: self.unknown_db.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            translate_failed: self.translate_failed.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            internal: self.internal.load(Ordering::Relaxed),
            shutting_down: self.shutting_down.load(Ordering::Relaxed),
            total: self.total.counts(),
            queue_wait: self.queue_wait.counts(),
            stages: self.stage_hists.iter().map(ServeHist::counts).collect(),
            batches: self.batches.load(Ordering::Relaxed),
            batch_members: self.batch_members.load(Ordering::Relaxed),
            batch_window_flushes: self.batch_window_flushes.load(Ordering::Relaxed),
            batch_size_flushes: self.batch_size_flushes.load(Ordering::Relaxed),
            batch_occupancy: self.batch_occupancy.counts(),
        }
    }
}

/// One snapshot of the monotonic serving stats. Cumulative `stats` renders
/// the current snapshot directly; delta `stats` renders `current − base`
/// and advances the base (interval semantics).
#[derive(Clone, Default)]
struct StatsWindow {
    submitted: u64,
    completed: u64,
    retries: u64,
    degraded_completions: u64,
    worker_panics: u64,
    worker_respawns: u64,
    shed: u64,
    bad_request: u64,
    unknown_db: u64,
    deadline_missed: u64,
    translate_failed: u64,
    quarantined: u64,
    internal: u64,
    shutting_down: u64,
    total: Vec<u64>,
    queue_wait: Vec<u64>,
    stages: Vec<Vec<u64>>,
    batches: u64,
    batch_members: u64,
    batch_window_flushes: u64,
    batch_size_flushes: u64,
    batch_occupancy: Vec<u64>,
}

impl StatsWindow {
    /// Element-wise `self − base`. Counters are monotonic, so saturating
    /// subtraction only guards against torn relaxed reads.
    fn since(&self, base: &StatsWindow) -> StatsWindow {
        let sub = |a: u64, b: u64| a.saturating_sub(b);
        let sub_vec = |a: &[u64], b: &[u64]| -> Vec<u64> {
            a.iter()
                .zip(b.iter().chain(std::iter::repeat(&0)))
                .map(|(x, y)| x.saturating_sub(*y))
                .collect()
        };
        StatsWindow {
            submitted: sub(self.submitted, base.submitted),
            completed: sub(self.completed, base.completed),
            retries: sub(self.retries, base.retries),
            degraded_completions: sub(self.degraded_completions, base.degraded_completions),
            worker_panics: sub(self.worker_panics, base.worker_panics),
            worker_respawns: sub(self.worker_respawns, base.worker_respawns),
            shed: sub(self.shed, base.shed),
            bad_request: sub(self.bad_request, base.bad_request),
            unknown_db: sub(self.unknown_db, base.unknown_db),
            deadline_missed: sub(self.deadline_missed, base.deadline_missed),
            translate_failed: sub(self.translate_failed, base.translate_failed),
            quarantined: sub(self.quarantined, base.quarantined),
            internal: sub(self.internal, base.internal),
            shutting_down: sub(self.shutting_down, base.shutting_down),
            total: sub_vec(&self.total, &base.total),
            queue_wait: sub_vec(&self.queue_wait, &base.queue_wait),
            stages: self
                .stages
                .iter()
                .enumerate()
                .map(|(i, s)| sub_vec(s, base.stages.get(i).map_or(&[][..], Vec::as_slice)))
                .collect(),
            batches: sub(self.batches, base.batches),
            batch_members: sub(self.batch_members, base.batch_members),
            batch_window_flushes: sub(self.batch_window_flushes, base.batch_window_flushes),
            batch_size_flushes: sub(self.batch_size_flushes, base.batch_size_flushes),
            batch_occupancy: sub_vec(&self.batch_occupancy, &base.batch_occupancy),
        }
    }
}

struct Shared {
    pipeline: Pipeline,
    dbs: HashMap<String, Database>,
    cfg: ServeConfig,
    epoch: Instant,
    q: Mutex<QueueState>,
    cond: Condvar,
    /// Batch token: with a batching window configured, the holder runs
    /// [`next_batch`] *and* the decode, so exactly one batch is in flight at
    /// a time. Arrivals accumulate in the queue while the current batch
    /// computes and the next batch fills instantly from the backlog, instead
    /// of the stream being sharded into fragments by however many workers
    /// were idle at that moment (which also thrashes the cache with
    /// concurrent decode tapes). Extra workers exist to absorb panics —
    /// a replacement takes the token over from a dead holder.
    assembler: Mutex<()>,
    stats: EngineStats,
    /// Retained request traces (the `trace` verb's source of truth).
    flight: FlightRecorder,
    /// JSONL path quarantined traces are auto-dumped to (`OBS_FLIGHT_DUMP`).
    flight_dump: Option<String>,
    /// Base snapshot for delta-window `stats` (see [`StatsWindow`]).
    stats_base: Mutex<StatsWindow>,
}

/// The long-lived serving engine. Dropping it shuts the worker pool down.
pub struct Engine {
    shared: Arc<Shared>,
}

impl Engine {
    /// Loads the pipeline into a worker pool and starts serving.
    ///
    /// # Panics
    /// If `cfg.workers` is zero or a worker thread cannot be spawned.
    pub fn start(pipeline: Pipeline, databases: Vec<Database>, cfg: ServeConfig) -> Engine {
        assert!(cfg.workers > 0, "serve engine needs at least one worker");
        install_quiet_panic_hook();
        let dbs = databases
            .into_iter()
            .map(|db| (db.schema().db_id.clone(), db))
            .collect::<HashMap<_, _>>();
        let shared = Arc::new(Shared {
            pipeline,
            dbs,
            cfg,
            epoch: Instant::now(),
            q: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
                live_workers: 0,
                spawned_total: 0,
            }),
            cond: Condvar::new(),
            assembler: Mutex::new(()),
            stats: EngineStats::new(),
            flight: FlightRecorder::new(cfg.flight_capacity.max(2)),
            flight_dump: std::env::var("OBS_FLIGHT_DUMP").ok().filter(|s| !s.is_empty()),
            stats_base: Mutex::new(StatsWindow::default()),
        });
        for _ in 0..cfg.workers {
            spawn_worker(&shared);
        }
        Engine { shared }
    }

    /// Milliseconds since the engine epoch (the deadline clock).
    pub fn now_ms(&self) -> u64 {
        ms_since(self.shared.epoch)
    }

    /// Registered database names.
    pub fn database_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.dbs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Currently live worker threads.
    pub fn live_workers(&self) -> usize {
        self.shared.q.lock().unwrap().live_workers
    }

    /// Currently queued (not yet dequeued) requests.
    pub fn queue_depth(&self) -> usize {
        self.shared.q.lock().unwrap().jobs.len()
    }

    /// Serving counters and histograms.
    pub fn stats(&self) -> &EngineStats {
        &self.shared.stats
    }

    /// Submits a translate request. Synchronous rejections (validation,
    /// admission, shutdown) return `Err`; admitted requests return the
    /// receiver their response will arrive on — exactly one response per
    /// admitted request.
    ///
    /// # Errors
    /// [`ErrorKind::BadRequest`], [`ErrorKind::UnknownDb`],
    /// [`ErrorKind::Overload`] or [`ErrorKind::ShuttingDown`].
    pub fn submit(&self, req: TranslateJob) -> Result<mpsc::Receiver<Response>, ServeError> {
        let sh = &self.shared;
        sh.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let reject = |kind: ErrorKind, detail: String| {
            sh.stats.count_rejection(kind);
            Err(ServeError::new(kind, detail))
        };
        if req.fault.is_some() && !sh.cfg.allow_fault_injection {
            return reject(
                ErrorKind::BadRequest,
                "fault injection is not enabled on this server".into(),
            );
        }
        if req.question.trim().is_empty() {
            return reject(ErrorKind::BadRequest, "empty question".into());
        }
        if req.question.chars().count() > sh.cfg.max_question_chars {
            return reject(
                ErrorKind::BadRequest,
                format!("question exceeds {} characters", sh.cfg.max_question_chars),
            );
        }
        if !sh.dbs.contains_key(&req.db) {
            return reject(ErrorKind::UnknownDb, format!("unknown database `{}`", req.db));
        }
        let now_ms = ms_since(sh.epoch);
        let now_us = us_since(sh.epoch);
        let budget = req.deadline_ms.unwrap_or(sh.cfg.default_deadline_ms);
        let trace = sh.cfg.record_traces.then(|| {
            let mut t = RequestTrace::new(req.id, req.db.clone(), budget);
            // Injected faults are attributed up front: if this request later
            // panics a worker, the flight recorder shows what was asked for.
            if let Some(f) = &req.fault {
                if !f.is_noop() {
                    t.fault = Some(format!("injected: {}", f.render().render()));
                }
            }
            t
        });
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id: req.id,
            db: req.db,
            question: req.question,
            deadline: Deadline::from_budget(now_ms, budget),
            gold_values: req.gold_values,
            fault: req.fault,
            reply: tx,
            submitted_us: now_us,
            enqueued_us: now_us,
            not_before_ms: 0,
            panics: 0,
            degraded: false,
            trace,
        };
        let admission = AdmissionPolicy { capacity: sh.cfg.queue_capacity };
        {
            let mut q = sh.q.lock().unwrap();
            if q.shutting_down {
                drop(q);
                return reject(ErrorKind::ShuttingDown, "server is shutting down".into());
            }
            if !admission.admit(q.jobs.len()) {
                drop(q);
                return reject(
                    ErrorKind::Overload,
                    format!("queue full ({} queued)", sh.cfg.queue_capacity),
                );
            }
            q.jobs.push_back(job);
        }
        sh.cond.notify_one();
        Ok(rx)
    }

    /// Submits and waits for the response (rejections become typed error
    /// responses carrying the request id).
    pub fn translate_blocking(&self, req: TranslateJob) -> Response {
        let id = req.id;
        match self.submit(req) {
            Ok(rx) => rx.recv().unwrap_or_else(|_| {
                // A dropped sender without a reply would be an engine bug;
                // surface it as a typed internal error, never a hang.
                self.shared.stats.count_rejection(ErrorKind::Internal);
                Response::Error {
                    id,
                    error: ServeError::new(ErrorKind::Internal, "reply channel closed"),
                    trace: None,
                }
            }),
            Err(error) => Response::Error { id, error, trace: None },
        }
    }

    /// The `stats` verb payload. Cumulative by default; with `delta` the
    /// counters and histograms cover only the interval since the previous
    /// delta call (snapshot-and-diff), while the worker/queue gauges stay
    /// instantaneous either way.
    pub fn stats_json(&self, delta: bool) -> Json {
        let sh = &self.shared;
        let (depth, live) = {
            let q = sh.q.lock().unwrap();
            (q.jobs.len(), q.live_workers)
        };
        let cur = sh.stats.window();
        let (win, window_label) = if delta {
            let mut base = sh.stats_base.lock().unwrap();
            let d = cur.since(&base);
            *base = cur;
            (d, "delta")
        } else {
            (cur, "cumulative")
        };
        let int = |v: u64| Json::Int(v as i64);
        let mut latencies: Vec<(&str, Json)> = vec![
            ("total", ServeHist::json_from_counts(&win.total)),
            ("queue_wait", ServeHist::json_from_counts(&win.queue_wait)),
        ];
        for (stage, counts) in Stage::ALL.iter().zip(&win.stages) {
            latencies.push((stage.label(), ServeHist::json_from_counts(counts)));
        }
        // SLO eligibility: the server's own failures burn the budget; client
        // errors (bad_request, unknown_db) and orderly shutdown do not.
        let good = win.completed + win.translate_failed;
        let bad = win.shed + win.deadline_missed + win.quarantined + win.internal;
        let slo = sh.cfg.slo.evaluate(window_label, good, good + bad, &win.total);
        Json::obj(vec![
            ("window", Json::Str(window_label.into())),
            (
                "workers",
                Json::obj(vec![
                    ("configured", Json::Int(sh.cfg.workers as i64)),
                    ("live", Json::Int(live as i64)),
                    ("panics", int(win.worker_panics)),
                    ("respawns", int(win.worker_respawns)),
                ]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("depth", Json::Int(depth as i64)),
                    ("capacity", Json::Int(sh.cfg.queue_capacity as i64)),
                ]),
            ),
            (
                "requests",
                Json::obj(vec![
                    ("submitted", int(win.submitted)),
                    ("completed", int(win.completed)),
                    ("retries", int(win.retries)),
                    ("degraded_completions", int(win.degraded_completions)),
                ]),
            ),
            (
                "rejections",
                Json::obj(vec![
                    ("overload", int(win.shed)),
                    ("bad_request", int(win.bad_request)),
                    ("unknown_db", int(win.unknown_db)),
                    ("deadline_exceeded", int(win.deadline_missed)),
                    ("translate_failed", int(win.translate_failed)),
                    ("quarantined", int(win.quarantined)),
                    ("internal", int(win.internal)),
                    ("shutting_down", int(win.shutting_down)),
                ]),
            ),
            ("latency_us", Json::Obj(
                latencies.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            )),
            (
                "batching",
                Json::obj(vec![
                    ("window_us", Json::Int(sh.cfg.batch_window_us as i64)),
                    ("batch_max", Json::Int(sh.cfg.batch_max as i64)),
                    ("batches", int(win.batches)),
                    ("members", int(win.batch_members)),
                    ("window_flushes", int(win.batch_window_flushes)),
                    ("size_flushes", int(win.batch_size_flushes)),
                    (
                        "occupancy",
                        Json::obj(vec![
                            (
                                "mean",
                                Json::Num(if win.batches == 0 {
                                    0.0
                                } else {
                                    win.batch_members as f64 / win.batches as f64
                                }),
                            ),
                            ("p50", Json::Num(percentile_from_counts(&win.batch_occupancy, 0.50))),
                            ("p99", Json::Num(percentile_from_counts(&win.batch_occupancy, 0.99))),
                        ]),
                    ),
                ]),
            ),
            ("slo", slo.to_json(&sh.cfg.slo, None)),
            (
                "flight",
                Json::obj(vec![
                    ("recorded", Json::Int(sh.flight.recorded() as i64)),
                    ("capacity", Json::Int(sh.cfg.flight_capacity as i64)),
                ]),
            ),
        ])
    }

    /// The `trace` verb payload: retained flight-recorder traces, optionally
    /// filtered to one `trace_id` or truncated to the newest `last`.
    pub fn traces_json(&self, trace_id: Option<u64>, last: Option<usize>) -> Json {
        self.shared.flight.to_json(trace_id, last)
    }

    /// The flight recorder (test and harness access).
    pub fn flight(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// A standalone named `type:"slo"` record over the engine's cumulative
    /// window — benchmark artifacts gate on this via `vn-slo-check`.
    pub fn slo_json(&self, name: &str) -> Json {
        let sh = &self.shared;
        let win = sh.stats.window();
        let good = win.completed + win.translate_failed;
        let bad = win.shed + win.deadline_missed + win.quarantined + win.internal;
        sh.cfg
            .slo
            .evaluate("cumulative", good, good + bad, &win.total)
            .to_json(&sh.cfg.slo, Some(name))
    }

    /// Graceful shutdown: stop admitting, drain the queue, wait for every
    /// worker (including respawn replacements) to exit. Idempotent.
    pub fn shutdown(&self) {
        let sh = &self.shared;
        let mut q = sh.q.lock().unwrap();
        q.shutting_down = true;
        sh.cond.notify_all();
        while q.live_workers > 0 {
            let (guard, _) = sh
                .cond
                .wait_timeout(q, Duration::from_millis(200))
                .unwrap();
            q = guard;
            sh.cond.notify_all();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn ms_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

fn us_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

/// Installs a process-wide panic hook that silences the default banner for
/// worker threads (their panics are caught and handled); all other threads
/// keep the previous hook.
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !is_worker {
                prev(info);
            }
        }));
    });
}

fn spawn_worker(shared: &Arc<Shared>) {
    {
        let mut q = shared.q.lock().unwrap();
        q.live_workers += 1;
        q.spawned_total += 1;
    }
    let idx = shared.q.lock().unwrap().spawned_total;
    let sh = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("{WORKER_PREFIX}-{idx}"))
        .spawn(move || {
            let panicked = worker_loop(&sh);
            if panicked {
                sh.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
                spawn_worker(&sh);
            }
            let mut q = sh.q.lock().unwrap();
            q.live_workers -= 1;
            drop(q);
            sh.cond.notify_all();
        })
        .expect("failed to spawn serve worker");
}

/// Runs batches until shutdown (returns `false`) or a caught panic
/// (returns `true`; the caller respawns a replacement and lets this thread
/// die, so any thread-local state the panic may have wedged is discarded).
fn worker_loop(sh: &Arc<Shared>) -> bool {
    if sh.cfg.batch_window_us > 0 {
        // One batch in flight at a time: the token holder runs assembly *and*
        // decode, and keeps the token for its whole life, so one worker with
        // warm thread-local state (decode tape, packed-weight cache) processes
        // every batch instead of the stream being sharded into fragments — or
        // decoded on rotating cold threads — by however many workers were idle
        // at that moment. Arrivals accumulate in the queue while the current
        // batch computes, and the next batch then fills straight from the
        // backlog; the window is only ever waited out when load is light. The
        // other workers sleep here until the holder dies (panic or shutdown)
        // and one of them takes over. (A poisoned token just means the holder
        // panicked mid-batch; batch state lives in the queue, so it is always
        // safe to take over.)
        let _token = sh.assembler.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let Some(jobs) = next_batch(sh) else { return false };
            if process_batch(sh, jobs) {
                return true;
            }
        }
    }
    loop {
        let Some(jobs) = next_batch(sh) else { return false };
        if process_batch(sh, jobs) {
            return true;
        }
    }
}

/// One batch member mid-flight: its job, the queue wait recorded at
/// dequeue, the attempt's ambient trace context (kept installed-on-demand
/// across all three phases so the open `encode_decode` stage spans the
/// shared decode), and — between the prepare and finish phases — its
/// prepared request.
struct Member<'a> {
    job: Job,
    queue_wait_us: u64,
    ctx: Option<SpanCtx>,
    prepared: Option<PreparedRequest<'a>>,
}

/// Drains the member's pending stage events into its trace (closing any
/// open stage). Call only when the attempt is over — settling or requeueing
/// — never between phases.
fn flush_ctx(job: &mut Job, ctx: &Option<SpanCtx>) {
    if let (Some(trace), Some(ctx)) = (job.trace.as_mut(), ctx.as_ref()) {
        trace.stages.extend(ctx.take_events());
    }
}

/// Returns an unprocessed co-batched member to the *front* of the queue
/// after another member panicked the worker: no reply has been sent, so the
/// request simply gets re-dispatched (and re-decoded) by a healthy worker.
/// Its own retry budget is untouched — it did nothing wrong.
fn requeue_innocent(sh: &Shared, mut member: Member<'_>) {
    flush_ctx(&mut member.job, &member.ctx);
    member.prepared = None;
    member.job.enqueued_us = us_since(sh.epoch);
    let mut q = sh.q.lock().unwrap();
    q.jobs.push_front(member.job);
    drop(q);
    sh.cond.notify_all();
}

/// Completes a member: stamps latency and the trace digest, records stats,
/// replies.
fn settle_ok(sh: &Shared, mut member: Member<'_>, mut body: Box<Translated>) {
    let latency = us_since(sh.epoch).saturating_sub(member.job.submitted_us);
    body.latency_us = latency;
    sh.stats.total.record_us(latency);
    sh.stats.completed.fetch_add(1, Ordering::Relaxed);
    if body.degraded {
        sh.stats.degraded_completions.fetch_add(1, Ordering::Relaxed);
    }
    record_attempt(&mut member.job, member.queue_wait_us, "ok", "");
    body.trace = finish_trace(sh, &mut member.job, "completed");
    let _ = member.job.reply.send(Response::Translated { id: member.job.id, body });
}

/// Rejects a member with a typed error.
fn settle_error(sh: &Shared, member: &mut Member<'_>, err: ServeError) {
    let label = if err.kind == ErrorKind::DeadlineExceeded { "deadline" } else { "error" };
    record_attempt(&mut member.job, member.queue_wait_us, label, &err.detail);
    reject_job(sh, &mut member.job, err.kind, err.detail);
}

/// Handles a member whose attempt panicked the worker: retry on the
/// degraded scalar path with backoff, or quarantine/fail when the budget is
/// spent. `count_event` attributes the underlying thread-panic to exactly
/// one member when a shared decode takes several members down together,
/// keeping `worker_panics == worker_respawns`.
fn settle_panic(sh: &Shared, mut member: Member<'_>, msg: String, count_event: bool) {
    if count_event {
        OBS_WORKER_PANICS.add(1);
        sh.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
    }
    let job = &mut member.job;
    record_attempt(job, member.queue_wait_us, "panic", &msg);
    if let Some(t) = job.trace.as_mut() {
        // Prefer the injected-fault attribution from admission;
        // a real (uninjected) panic attributes to its message.
        t.fault.get_or_insert(msg);
    }
    job.panics += 1;
    if sh.cfg.quarantine.quarantined(job.panics) {
        let detail = format!("request killed {} workers", job.panics);
        reject_job(sh, job, ErrorKind::Quarantined, detail);
    } else if sh.cfg.retry.allows_retry(job.panics) {
        sh.stats.retries.fetch_add(1, Ordering::Relaxed);
        job.degraded = true;
        job.not_before_ms =
            ms_since(sh.epoch).saturating_add(sh.cfg.retry.backoff_ms(job.panics));
        job.enqueued_us = us_since(sh.epoch);
        let mut q = sh.q.lock().unwrap();
        // Retries bypass admission: the request already holds its slot,
        // shedding it now would break at-most-once accounting.
        q.jobs.push_back(member.job);
        drop(q);
        sh.cond.notify_all();
    } else {
        reject_job(sh, job, ErrorKind::Internal, "retry budget exhausted".into());
    }
}

/// Processes one assembled batch through three phases — per-member prepare
/// (stage gates, faults, deadlines), one shared decode, per-member finish —
/// and settles every member exactly once. Returns `true` when a panic was
/// caught and the worker thread must be replaced.
///
/// Fault isolation: every injected fault fires at a stage gate, and all
/// stage gates run in the per-member prepare/finish phases, each under its
/// own `catch_unwind` — so a faulted member can never poison a co-batched
/// request's *result*. On any caught panic the batch is abandoned the way
/// the single-request engine abandons its job: the panicking member is
/// settled (retry/quarantine), unfinished co-batched members go back to the
/// queue front for a healthy worker, and this thread dies (its thread-local
/// state may be wedged).
fn process_batch(sh: &Arc<Shared>, jobs: Vec<Job>) -> bool {
    let mut pending: VecDeque<Job> = jobs.into();
    let mut members: Vec<Member<'_>> = Vec::with_capacity(pending.len());

    // Phase A: per-member admission-to-prepared, each under its own
    // catch_unwind with its own trace context installed.
    while let Some(mut job) = pending.pop_front() {
        let now_ms = ms_since(sh.epoch);
        let queue_wait_us = us_since(sh.epoch).saturating_sub(job.enqueued_us);
        if job.deadline.expired(now_ms) {
            // Spent its budget in the queue: answer without running a stage.
            record_attempt(&mut job, queue_wait_us, "deadline", "deadline expired in queue");
            reject_job(sh, &mut job, ErrorKind::DeadlineExceeded, "deadline expired in queue".into());
            continue;
        }
        sh.stats.queue_wait.record_us(queue_wait_us);
        // The attempt's stage events are recorded through an ambient context
        // whose buffer is shared (Arc) with this scope — a panic unwinding
        // the attempt cannot lose them, and the guard uninstalls either way.
        let ctx = job.trace.as_ref().map(|t| SpanCtx::new(t.trace_id, job.panics));
        let outcome = {
            let _span = valuenet_obs::span("serve.request");
            let _ctx_guard = ctx.as_ref().map(install_ctx);
            catch_unwind(AssertUnwindSafe(|| prepare_attempt(sh, &job)))
        };
        let mut member = Member { job, queue_wait_us, ctx, prepared: None };
        match outcome {
            Ok(Ok(prepared)) => {
                member.prepared = Some(prepared);
                members.push(member);
            }
            Ok(Err(err)) => {
                flush_ctx(&mut member.job, &member.ctx);
                settle_error(sh, &mut member, err);
            }
            Err(panic) => {
                flush_ctx(&mut member.job, &member.ctx);
                settle_panic(sh, member, panic_message(panic.as_ref()), true);
                for m in members {
                    requeue_innocent(sh, m);
                }
                for job in pending {
                    let m = Member { job, queue_wait_us: 0, ctx: None, prepared: None };
                    requeue_innocent(sh, m);
                }
                return true;
            }
        }
    }
    if members.is_empty() {
        return false;
    }

    // Phase B: one fused decode over every prepared member. No stage gate
    // runs here, so injected faults cannot fire; a (real) panic takes every
    // member to the retry path together. The open `encode_decode` stage in
    // each member's context spans this phase — each request's trace charges
    // it the full shared decode, which is the latency it experienced.
    // Stamp the decode cohort size on every member that got this far —
    // including degraded singletons and the window-0 path, where it records
    // that the request decoded alone (1). 0 means the attempt never
    // reached the neural decode.
    let n = members.len();
    for m in &mut members {
        if let Some(t) = m.job.trace.as_mut() {
            t.batch_size = n as u32;
        }
    }
    let degraded = members[0].job.degraded;
    let outcome = {
        let _span = valuenet_obs::span("serve.batch");
        catch_unwind(AssertUnwindSafe(|| {
            let mut refs: Vec<&mut PreparedRequest<'_>> =
                members.iter_mut().filter_map(|m| m.prepared.as_mut()).collect();
            let mut run = || sh.pipeline.decode_batch(&mut refs);
            if degraded {
                // Degraded retries decode alone (next_batch never co-batches
                // them) on the scalar tape — the PR 6 degradation ladder.
                ValueNetModel::with_scalar_fallback(run)
            } else {
                run()
            }
        }))
    };
    if let Err(panic) = outcome {
        let msg = panic_message(panic.as_ref());
        for (i, mut m) in members.into_iter().enumerate() {
            flush_ctx(&mut m.job, &m.ctx);
            settle_panic(sh, m, msg.clone(), i == 0);
        }
        return true;
    }

    // Phase C: per-member lowering, execution-guided selection and reply,
    // again each under its own catch_unwind and trace context.
    let mut rest = members.into_iter();
    while let Some(mut member) = rest.next() {
        let prepared = member.prepared.take().expect("prepared in phase A");
        let outcome = {
            let _span = valuenet_obs::span("serve.request");
            let _ctx_guard = member.ctx.as_ref().map(install_ctx);
            catch_unwind(AssertUnwindSafe(|| finish_attempt(sh, &member.job, prepared)))
        };
        flush_ctx(&mut member.job, &member.ctx);
        match outcome {
            Ok(Ok(body)) => settle_ok(sh, member, body),
            Ok(Err(err)) => settle_error(sh, &mut member, err),
            Err(panic) => {
                settle_panic(sh, member, panic_message(panic.as_ref()), true);
                for m in rest {
                    requeue_innocent(sh, m);
                }
                return true;
            }
        }
    }
    false
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Appends one attempt record to the job's trace (no-op when untraced).
fn record_attempt(job: &mut Job, queue_wait_us: u64, outcome: &'static str, detail: &str) {
    if let Some(t) = job.trace.as_mut() {
        t.attempts.push(AttemptTrace {
            attempt: job.panics,
            degraded: job.degraded,
            queue_wait_us,
            outcome,
            detail: detail.to_string(),
        });
    }
}

/// Finishes the job's trace with a terminal outcome, files it in the flight
/// recorder (auto-dumping quarantines to `OBS_FLIGHT_DUMP`), and returns
/// the wire digest.
fn finish_trace(sh: &Shared, job: &mut Job, outcome: &str) -> Option<TraceSummary> {
    let mut t = job.trace.take()?;
    t.finish(outcome);
    let summary = TraceSummary::from_trace(&t);
    if outcome == ErrorKind::Quarantined.label() {
        if let Some(path) = &sh.flight_dump {
            if let Err(e) = FlightRecorder::append_jsonl(path, &t) {
                eprintln!("valuenet-serve: cannot dump quarantined trace to {path}: {e}");
            }
        }
    }
    sh.flight.record(t);
    Some(summary)
}

fn reject_job(sh: &Shared, job: &mut Job, kind: ErrorKind, detail: String) {
    sh.stats.count_rejection(kind);
    let trace = finish_trace(sh, job, kind.label());
    let _ = job
        .reply
        .send(Response::Error { id: job.id, error: ServeError { kind, detail }, trace });
}

/// Pops the next eligible job: FIFO among jobs whose retry backoff has
/// elapsed. Blocks until a job is eligible or shutdown empties the queue.
/// During shutdown the queue is drained ignoring backoff delays.
fn next_job(sh: &Arc<Shared>) -> Option<Job> {
    let mut q = sh.q.lock().unwrap();
    loop {
        if q.shutting_down {
            return q.jobs.pop_front();
        }
        let now = ms_since(sh.epoch);
        if let Some(pos) = q.jobs.iter().position(|j| j.not_before_ms <= now) {
            return q.jobs.remove(pos);
        }
        // Nothing eligible: sleep until the nearest backoff expiry (or a
        // notify). The cap bounds the wait so shutdown is never missed.
        let wait_ms = q
            .jobs
            .iter()
            .map(|j| j.not_before_ms.saturating_sub(now))
            .min()
            .unwrap_or(200)
            .clamp(1, 200);
        let (guard, _) = sh.cond.wait_timeout(q, Duration::from_millis(wait_ms)).unwrap();
        q = guard;
    }
}

/// Assembles the next decode batch: the first job comes from the blocking
/// dequeue; with a batching window configured, up to `batch_max − 1` more
/// eligible requests are collected for at most `batch_window_us` — a
/// bounded latency spend that buys kernel-level throughput. The batch also
/// flushes early on quiescence (no eligible arrival for a quarter of the
/// window), so the full window is only ever waited out while jobs keep
/// trickling in. Degraded scalar retries always decode alone, and a zero
/// window reduces to the unbatched engine.
fn next_batch(sh: &Arc<Shared>) -> Option<Vec<Job>> {
    let first = next_job(sh)?;
    let window_us = sh.cfg.batch_window_us;
    let max = sh.cfg.batch_max.max(1);
    if window_us == 0 {
        return Some(vec![first]);
    }
    if max == 1 || first.degraded {
        if !first.degraded {
            sh.stats.record_batch(1, true);
        }
        return Some(vec![first]);
    }
    let mut batch = vec![first];
    let flush_at = Instant::now() + Duration::from_micros(window_us);
    // Quiescence flush: co-batchable arrivals come in bursts (replies
    // releasing blocked clients, a dispatcher tick). Once no eligible job
    // has arrived for a fraction of the window, more arrivals inside the
    // budget are unlikely, and waiting out the rest of the window would be
    // pure added latency — worse, on a saturated host it is dead time no
    // other request can use. The window stays the hard upper bound.
    let idle = Duration::from_micros((window_us / 4).max(1));
    let mut idle_at = Instant::now() + idle;
    let mut q = sh.q.lock().unwrap();
    let size_flush = loop {
        if q.shutting_down {
            break false;
        }
        let now = ms_since(sh.epoch);
        let before = batch.len();
        while batch.len() < max {
            // FIFO among eligible co-batchable jobs; degraded retries are
            // left for a solo dequeue.
            let Some(pos) = q.jobs.iter().position(|j| j.not_before_ms <= now && !j.degraded)
            else {
                break;
            };
            if let Some(j) = q.jobs.remove(pos) {
                batch.push(j);
            }
        }
        if batch.len() >= max {
            break true;
        }
        let now = Instant::now();
        if batch.len() > before {
            idle_at = now + idle;
        }
        let deadline = flush_at.min(idle_at);
        if now >= deadline {
            break false;
        }
        let (guard, _) = sh.cond.wait_timeout(q, deadline - now).unwrap();
        q = guard;
    };
    drop(q);
    sh.stats.record_batch(batch.len(), size_flush);
    Some(batch)
}

/// Maps a typed pipeline failure to the protocol taxonomy. `deadline_hit`
/// distinguishes a guard abort caused by an expired deadline from any other
/// abort.
fn map_pipeline_error(e: PipelineError, deadline_hit: bool) -> ServeError {
    match e {
        PipelineError::Aborted { stage } => {
            if deadline_hit {
                ServeError::new(
                    ErrorKind::DeadlineExceeded,
                    format!("deadline expired entering {}", stage.label()),
                )
            } else {
                ServeError::new(
                    ErrorKind::Internal,
                    format!("translation aborted entering {}", stage.label()),
                )
            }
        }
        PipelineError::MissingGoldValues => {
            ServeError::new(ErrorKind::BadRequest, "light mode requires gold_values")
        }
        e @ PipelineError::DanglingValuePointer { .. } => {
            ServeError::new(ErrorKind::Internal, e.to_string())
        }
    }
}

/// Builds the per-request stage guard — injected fault directives plus the
/// deadline check at every stage boundary — as local bindings (`guard` and
/// the named deadline flag), shared by the prepare and finish halves of an
/// attempt.
macro_rules! stage_guard {
    ($sh:expr, $job:expr, $guard:ident, $deadline_hit:ident) => {
        let deadline = $job.deadline;
        let epoch = $sh.epoch;
        let fault = $job.fault;
        let panics_so_far = $job.panics;
        let mut $deadline_hit = false;
        let mut $guard = |stage: Stage| -> bool {
            if let Some(f) = &fault {
                if f.delay_stage == Some(stage) && f.delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(f.delay_ms));
                }
                if f.panic_stage == Some(stage) && panics_so_far < f.panic_times {
                    panic!("injected fault: panic entering {}", stage.label());
                }
            }
            if deadline.expired(ms_since(epoch)) {
                $deadline_hit = true;
                return false;
            }
            true
        };
    };
}

/// The front half of a translation attempt: every stage through input
/// assembly, with injected faults and deadline checks at the stage gates.
fn prepare_attempt<'a>(sh: &'a Shared, job: &Job) -> Result<PreparedRequest<'a>, ServeError> {
    let db = sh.dbs.get(&job.db).expect("db checked at submit");
    stage_guard!(sh, job, guard, deadline_hit);
    let res = sh.pipeline.prepare_guarded(db, &job.question, job.gold_values.as_deref(), &mut guard);
    res.map_err(|e| map_pipeline_error(e, deadline_hit))
}

/// The back half of a translation attempt: SemQL lowering, execution-guided
/// selection and response assembly over the decoded hypotheses.
fn finish_attempt(
    sh: &Shared,
    job: &Job,
    prepared: PreparedRequest<'_>,
) -> Result<Box<Translated>, ServeError> {
    stage_guard!(sh, job, guard, deadline_hit);
    let res = sh.pipeline.finish_guarded(prepared, &mut guard);
    match res {
        Ok(p) => {
            let sql = match &p.sql {
                Some(s) => s.to_string(),
                None => {
                    return Err(ServeError::new(
                        ErrorKind::TranslateFailed,
                        "no executable SQL synthesized",
                    ))
                }
            };
            let values = p
                .selected_values()
                .map_err(|e| ServeError::new(ErrorKind::Internal, e.to_string()))?;
            let (rows, ordered) = match &p.result {
                Some(rs) => (
                    rs.rows
                        .iter()
                        .map(|r| r.iter().map(|d| d.to_string()).collect())
                        .collect(),
                    rs.ordered,
                ),
                None => (Vec::new(), false),
            };
            sh.stats.record_stages(&p.timings);
            Ok(Box::new(Translated {
                sql,
                rows,
                ordered,
                values,
                latency_us: 0, // stamped by the worker loop
                retries: job.panics,
                degraded: job.degraded,
                trace: None, // stamped by the worker loop
            }))
        }
        Err(e) => Err(map_pipeline_error(e, deadline_hit)),
    }
}
