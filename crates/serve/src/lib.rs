//! `valuenet-serve` — a fault-tolerant NL-to-SQL serving engine.
//!
//! ValueNet's pipeline (ICDE 2021) is built and evaluated as a batch
//! system; this crate turns a loaded [`Pipeline`](valuenet_core::Pipeline)
//! into a long-lived service with the failure behaviour a production
//! deployment needs:
//!
//! * **Admission control** ([`admission`]) — a bounded queue that *sheds*
//!   excess load with a typed `overload` rejection instead of stalling
//!   every client behind an unbounded backlog.
//! * **Per-request deadlines** — enforced when a request is dequeued and
//!   again at every pipeline stage boundary (preprocess → value lookup →
//!   encode/decode → post-process → execute), so an expired request stops
//!   consuming compute mid-flight.
//! * **Panic isolation** ([`engine`]) — each attempt runs under
//!   `catch_unwind`; a panicking worker is replaced and the request
//!   retries with capped exponential backoff on a degraded (scalar,
//!   non-packed, non-quantized) inference path. A request that kills two
//!   workers is *quarantined* — one poisoned input cannot take the pool
//!   down.
//! * **A line-delimited JSON protocol** ([`protocol`], [`server`]) over a
//!   Unix domain socket, with a closed error taxonomy and a `stats` verb
//!   exposing queue depth, shed/panic/deadline counters and per-stage
//!   latency percentiles. Malformed frames are answered, not fatal.
//! * **Deterministic fault injection** ([`fault`]) — requests may carry a
//!   [`FaultSpec`] (panic at stage N times / delay a stage) when the
//!   server opts in, which is how `vn-fuzz --serve` replays seeded fault
//!   scenarios bit-for-bit.
//!
//! The JSON layer is `valuenet-obs`'s own writer/parser; the whole crate
//! sticks to `std` — no new dependencies.

pub mod admission;
pub mod engine;
pub mod fault;
pub mod protocol;
pub mod server;

pub use admission::{AdmissionPolicy, Deadline, QuarantinePolicy, RetryPolicy};
pub use engine::{Engine, EngineStats, ServeConfig, TranslateJob};
pub use fault::FaultSpec;
pub use protocol::{ErrorKind, Request, Response, ServeError, TraceSummary, Translated};
pub use server::{serve_unix, translate_frame, verb_frame, Client};
