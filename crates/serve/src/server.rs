//! Line-delimited JSON over a Unix domain socket.
//!
//! One accept loop, one thread per connection, one request per line, one
//! response line per request. Malformed frames get a typed `bad_request`
//! response on the same connection — a broken client cannot wedge the
//! server. The `shutdown` verb acknowledges, stops accepting, drains the
//! engine and removes the socket file.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::engine::{Engine, TranslateJob};
use crate::protocol::{Request, Response, ServeError};
use valuenet_obs::json::Json;

struct ServerState {
    engine: Engine,
    stop: AtomicBool,
    socket: PathBuf,
}

/// Serves `engine` on a Unix domain socket at `path`, blocking until a
/// client sends the `shutdown` verb. Drains the engine and removes the
/// socket file before returning.
///
/// # Errors
/// Socket bind/accept failures.
pub fn serve_unix(engine: Engine, path: &Path) -> std::io::Result<()> {
    // A stale socket file from a killed process would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let state = Arc::new(ServerState {
        engine,
        stop: AtomicBool::new(false),
        socket: path.to_path_buf(),
    });
    let mut conn_id = 0u64;
    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        conn_id += 1;
        let st = Arc::clone(&state);
        std::thread::Builder::new()
            .name(format!("vn-serve-conn-{conn_id}"))
            .spawn(move || {
                let _ = handle_conn(&st, stream);
            })?;
    }
    state.engine.shutdown();
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Best-effort `id` extraction from a frame that failed full parsing, so
/// even a `bad_request` response correlates when the client managed to
/// send a well-formed id.
fn best_effort_id(line: &str) -> Option<i64> {
    match Json::parse(line.trim()).ok()?.get("id") {
        Some(Json::Int(i)) => Some(*i),
        _ => None,
    }
}

fn handle_conn(st: &ServerState, stream: UnixStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Request::parse(&line) {
            Ok(Request::Translate { id, db, question, deadline_ms, gold_values, fault }) => st
                .engine
                .translate_blocking(TranslateJob {
                    id,
                    db,
                    question,
                    deadline_ms,
                    gold_values,
                    fault,
                }),
            Ok(Request::Stats { id, delta }) => {
                Response::Stats { id, stats: st.engine.stats_json(delta) }
            }
            Ok(Request::Trace { id, trace_id, last }) => {
                Response::Traces { id, traces: st.engine.traces_json(trace_id, last) }
            }
            Ok(Request::Ping { id }) => Response::Pong { id },
            Ok(Request::Shutdown { id }) => {
                writeln!(writer, "{}", Response::ShutdownAck { id }.render())?;
                writer.flush()?;
                st.stop.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the stop flag.
                let _ = UnixStream::connect(&st.socket);
                return Ok(());
            }
            Err(mut error) => {
                let id = best_effort_id(&line);
                if error.detail.len() > 200 {
                    error.detail.truncate(200); // don't echo megabyte garbage
                }
                Response::Error { id, error, trace: None }
            }
        };
        writeln!(writer, "{}", resp.render())?;
        writer.flush()?;
    }
    Ok(())
}

/// A tiny blocking client for the line protocol — used by the smoke
/// driver, the fault harness and the serving benchmark.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    /// Connects to a serving socket.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Bounds every subsequent read — the fault harness uses this to turn
    /// a would-be deadlock into a visible failure instead of a hang.
    ///
    /// # Errors
    /// Socket option failures.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(dur)
    }

    /// Sends one raw line (appends the newline) and reads one response
    /// line.
    ///
    /// # Errors
    /// Socket I/O failures or a server-closed connection.
    pub fn roundtrip_raw(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        Response::parse(&resp).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e}: {resp}"))
        })
    }

    /// Sends a request object.
    ///
    /// # Errors
    /// Socket I/O failures.
    pub fn roundtrip(&mut self, req: &Json) -> std::io::Result<Response> {
        self.roundtrip_raw(&req.render())
    }
}

/// Builds a `translate` request frame (client side).
pub fn translate_frame(
    id: i64,
    db: &str,
    question: &str,
    deadline_ms: Option<u64>,
    gold_values: Option<&[String]>,
    fault: Option<&crate::fault::FaultSpec>,
) -> Json {
    let mut fields = vec![
        ("id", Json::Int(id)),
        ("verb", Json::Str("translate".into())),
        ("db", Json::Str(db.into())),
        ("question", Json::Str(question.into())),
    ];
    if let Some(d) = deadline_ms {
        fields.push(("deadline_ms", Json::Int(d as i64)));
    }
    if let Some(gold) = gold_values {
        fields.push((
            "gold_values",
            Json::Arr(gold.iter().map(|s| Json::Str(s.clone())).collect()),
        ));
    }
    if let Some(f) = fault {
        fields.push(("fault", f.render()));
    }
    Json::obj(fields)
}

/// Builds a bare-verb frame (`stats`, `ping`, `shutdown`).
pub fn verb_frame(id: i64, verb: &str) -> Json {
    Json::obj(vec![("id", Json::Int(id)), ("verb", Json::Str(verb.into()))])
}

impl ServeError {
    /// Maps an I/O-level client failure into the taxonomy (harness use).
    pub fn from_io(e: &std::io::Error) -> ServeError {
        ServeError::new(crate::protocol::ErrorKind::Internal, e.to_string())
    }
}
