//! Engine and socket integration tests: bit-identity with the in-process
//! pipeline, panic recovery, quarantine, deadlines, overload shedding, and
//! adversarial inputs — all without real faults, using the deterministic
//! injection hooks.

use valuenet_core::{train, ModelConfig, Pipeline, Stage, TrainConfig, ValueMode, ValueNetModel, Vocab};
use valuenet_dataset::{generate, Corpus, CorpusConfig};
use valuenet_obs::json::Json;
use valuenet_preprocess::StatisticalNer;
use valuenet_serve::{
    serve_unix, translate_frame, verb_frame, Client, Engine, ErrorKind, FaultSpec, Response,
    RetryPolicy, QuarantinePolicy, ServeConfig, TranslateJob,
};

fn corpus() -> Corpus {
    generate(&CorpusConfig {
        seed: 11,
        train_size: 48,
        dev_size: 12,
        rows_per_table: 10,
        ..CorpusConfig::default()
    })
}

/// Training is deterministic, so two calls produce bit-identical pipelines
/// — one goes into the engine, the other is the single-process reference.
fn trained() -> Pipeline {
    let (pipeline, _) = train(
        &corpus(),
        ValueMode::Light,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 3, verbose: false, ..Default::default() },
    );
    pipeline
}

/// A deterministic *untrained* pipeline — cheap, still exercises the full
/// request path (its predictions mostly fail to lower, which is fine for
/// robustness mechanics).
fn untrained() -> Pipeline {
    let c = corpus();
    let vocab = Vocab::build(c.train.iter().map(|s| s.question.as_str()));
    let model = ValueNetModel::new(ModelConfig::tiny(), vocab, 7);
    Pipeline::new(model, ValueMode::Light, StatisticalNer::new())
}

fn harness_config(workers: usize, queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity,
        allow_fault_injection: true,
        retry: RetryPolicy { max_retries: 2, base_ms: 5, cap_ms: 20 },
        quarantine: QuarantinePolicy { max_worker_kills: 2 },
        ..ServeConfig::default()
    }
}

fn job(id: i64, db: &str, question: &str, gold: &[String]) -> TranslateJob {
    TranslateJob {
        id: Some(id),
        db: db.into(),
        question: question.into(),
        gold_values: Some(gold.to_vec()),
        ..Default::default()
    }
}

fn expect_error(resp: Response, kind: ErrorKind) {
    match resp {
        Response::Error { error, .. } => assert_eq!(error.kind, kind, "detail: {}", error.detail),
        other => panic!("expected {kind:?} error, got {other:?}"),
    }
}

#[test]
fn trained_engine_end_to_end() {
    let reference = trained();
    let ref_corpus = corpus();
    let engine_corpus = corpus();
    let engine = Engine::start(trained(), engine_corpus.databases, harness_config(1, 4));

    // --- Bit-identity: served responses equal the in-process pipeline's.
    let mut compared = 0;
    for (i, sample) in ref_corpus.dev.iter().take(8).enumerate() {
        let db = ref_corpus.db(sample);
        let expect = reference
            .try_translate(db, &sample.question, Some(&sample.values))
            .expect("reference translation");
        let resp = engine.translate_blocking(job(
            i as i64,
            &db.schema().db_id,
            &sample.question,
            &sample.values,
        ));
        match (expect.sql.as_ref(), resp) {
            (Some(sql), Response::Translated { id, body }) => {
                assert_eq!(id, Some(i as i64));
                assert_eq!(body.sql, sql.to_string(), "SQL diverged on dev[{i}]");
                assert_eq!(
                    body.values,
                    expect.selected_values().unwrap(),
                    "values diverged on dev[{i}]"
                );
                let expect_rows: Vec<Vec<String>> = expect
                    .result
                    .as_ref()
                    .map(|rs| {
                        rs.rows
                            .iter()
                            .map(|r| r.iter().map(|d| d.to_string()).collect())
                            .collect()
                    })
                    .unwrap_or_default();
                assert_eq!(body.rows, expect_rows, "rows diverged on dev[{i}]");
                assert!(!body.degraded && body.retries == 0);
                compared += 1;
            }
            (None, resp) => expect_error(resp, ErrorKind::TranslateFailed),
            (Some(_), other) => panic!("expected translation, got {other:?}"),
        }
    }
    assert!(compared >= 4, "too few comparable dev translations ({compared})");

    let sample = &ref_corpus.dev[0];
    let db_name = ref_corpus.db(sample).schema().db_id.clone();

    // --- Panic once: retried on the degraded scalar path, worker respawned.
    let panics_before = engine.stats().worker_panics();
    let mut j = job(100, &db_name, &sample.question, &sample.values);
    j.fault = Some(FaultSpec {
        panic_stage: Some(Stage::EncodeDecode),
        panic_times: 1,
        ..Default::default()
    });
    match engine.translate_blocking(j) {
        Response::Translated { body, .. } => {
            assert_eq!(body.retries, 1);
            assert!(body.degraded, "retry after panic must take the scalar path");
            let t = body.trace.expect("response must carry its trace digest");
            assert_eq!(t.attempts, 2, "digest must count the killed attempt");
        }
        Response::Error { error, .. } => {
            assert_eq!(error.kind, ErrorKind::TranslateFailed, "unexpected: {error}")
        }
        other => panic!("unexpected response: {other:?}"),
    }
    assert_eq!(engine.stats().worker_panics(), panics_before + 1);

    // --- Panic persistently: quarantined after two worker kills.
    let mut j = job(101, &db_name, &sample.question, &sample.values);
    j.fault = Some(FaultSpec {
        panic_stage: Some(Stage::Preprocess),
        panic_times: 99,
        ..Default::default()
    });
    expect_error(engine.translate_blocking(j), ErrorKind::Quarantined);
    assert_eq!(engine.stats().quarantined(), 1);

    // --- Deadline at a stage boundary: a stalled stage trips it.
    let mut j = job(102, &db_name, &sample.question, &sample.values);
    j.deadline_ms = Some(10);
    j.fault = Some(FaultSpec {
        delay_stage: Some(Stage::Preprocess),
        delay_ms: 60,
        ..Default::default()
    });
    expect_error(engine.translate_blocking(j), ErrorKind::DeadlineExceeded);

    // --- Deadline in queue + overload shedding: park the single worker on
    // a slow request, then overfill the bounded queue.
    let mut slow = job(103, &db_name, &sample.question, &sample.values);
    slow.fault = Some(FaultSpec {
        delay_stage: Some(Stage::Preprocess),
        delay_ms: 300,
        ..Default::default()
    });
    let slow_rx = engine.submit(slow).expect("slow job admitted");
    std::thread::sleep(std::time::Duration::from_millis(30)); // worker picks it up
    let mut doomed = job(104, &db_name, &sample.question, &sample.values);
    doomed.deadline_ms = Some(20); // will expire while queued
    let doomed_rx = engine.submit(doomed).expect("doomed job admitted");
    let mut queued = Vec::new();
    let mut shed = 0;
    for i in 0..8 {
        match engine.submit(job(110 + i, &db_name, &sample.question, &sample.values)) {
            Ok(rx) => queued.push(rx),
            Err(e) => {
                assert_eq!(e.kind, ErrorKind::Overload);
                shed += 1;
            }
        }
    }
    assert!(shed > 0, "bounded queue never shed");
    assert_eq!(engine.stats().shed(), shed);
    expect_error(
        doomed_rx.recv().expect("doomed reply"),
        ErrorKind::DeadlineExceeded,
    );
    assert!(engine.stats().deadline_missed() >= 2);
    assert!(slow_rx.recv().is_ok(), "slow job must still be answered");
    for rx in queued {
        assert!(rx.recv().is_ok(), "queued job must be answered exactly once");
    }

    // --- Stats verb shape.
    let stats = engine.stats_json(false);
    assert_eq!(
        stats.get("workers").and_then(|w| w.get("configured")).and_then(|v| v.as_f64()),
        Some(1.0)
    );
    assert!(
        stats
            .get("latency_us")
            .and_then(|l| l.get("total"))
            .and_then(|t| t.get("count"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
            >= 4.0,
        "latency histogram not populated: {}",
        stats.render()
    );
    let respawns = stats
        .get("workers")
        .and_then(|w| w.get("respawns"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(respawns >= 3.0, "panicked workers were not respawned");

    // --- No worker leaks: every panic respawned exactly one replacement.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert_eq!(engine.live_workers(), 1, "worker pool leaked or lost threads");

    // --- Shutdown: drains, stops workers, rejects new work.
    engine.shutdown();
    assert_eq!(engine.live_workers(), 0);
    expect_error(
        engine.translate_blocking(job(200, &db_name, &sample.question, &sample.values)),
        ErrorKind::ShuttingDown,
    );
}

#[test]
fn adversarial_inputs_get_typed_errors() {
    let c = corpus();
    let db_name = c.databases[0].schema().db_id.clone();
    let engine = Engine::start(untrained(), c.databases, ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });

    // Empty and whitespace-only questions.
    expect_error(
        engine.translate_blocking(job(1, &db_name, "", &[])),
        ErrorKind::BadRequest,
    );
    expect_error(
        engine.translate_blocking(job(2, &db_name, "   \t  ", &[])),
        ErrorKind::BadRequest,
    );

    // Unknown database.
    expect_error(
        engine.translate_blocking(job(3, "no_such_db", "How many?", &[])),
        ErrorKind::UnknownDb,
    );

    // A 10k-character question must be rejected, not crash a worker.
    let huge = "why ".repeat(2500);
    expect_error(
        engine.translate_blocking(job(4, &db_name, &huge, &[])),
        ErrorKind::BadRequest,
    );

    // Fault directives are rejected when injection is not enabled.
    let mut j = job(5, &db_name, "How many?", &[]);
    j.fault = Some(FaultSpec {
        panic_stage: Some(Stage::Preprocess),
        panic_times: 1,
        ..Default::default()
    });
    expect_error(engine.translate_blocking(j), ErrorKind::BadRequest);

    // A hostile-but-valid question flows through the untrained model and
    // gets a *typed* outcome (no panic, no unwrap on input-derived data).
    let weird = "Ω≈ç√∫˜µ≤ \"quotes\" \\backslash\\ 'and'; -- DROP TABLE x; 🚀";
    match engine.translate_blocking(job(6, &db_name, weird, &["1".into()])) {
        Response::Translated { .. } => {}
        Response::Error { error, .. } => assert!(
            matches!(error.kind, ErrorKind::TranslateFailed | ErrorKind::Internal),
            "unexpected kind: {error}"
        ),
        other => panic!("unexpected response: {other:?}"),
    }
    assert_eq!(engine.live_workers(), 1, "adversarial input killed a worker");
}

/// The tentpole invariant: a trace context allocated at admission survives
/// a worker panic, the respawn, and the degraded retry — the reply digest
/// and the flight-recorder span tree both cover *all* attempts.
#[test]
fn traces_survive_panic_respawn_and_degraded_retry() {
    let c = corpus();
    let db_name = c.databases[0].schema().db_id.clone();
    let engine = Engine::start(untrained(), c.databases, harness_config(1, 8));

    let mut j = job(1, &db_name, "How many are there?", &["1".to_string()]);
    j.fault = Some(FaultSpec {
        panic_stage: Some(Stage::EncodeDecode),
        panic_times: 1,
        ..Default::default()
    });
    let summary = match engine.translate_blocking(j) {
        Response::Translated { body, .. } => {
            body.trace.expect("completed response must carry a trace digest")
        }
        Response::Error { error, trace, .. } => {
            assert_eq!(error.kind, ErrorKind::TranslateFailed, "unexpected: {error}");
            trace.expect("typed error must carry a trace digest")
        }
        other => panic!("unexpected response: {other:?}"),
    };
    assert_eq!(summary.attempts, 2, "panic + degraded retry = two attempts");
    assert!(
        summary.stages.iter().any(|(s, _)| s == "preprocess"),
        "per-stage totals missing from digest: {:?}",
        summary.stages
    );

    // The flight recorder retains the full span tree under the same id.
    let dump = engine.traces_json(Some(summary.trace_id), None);
    let traces = dump.get("traces").and_then(Json::as_arr).expect("traces array");
    assert_eq!(traces.len(), 1, "trace_id lookup must find the request");
    let t = &traces[0];
    let attempts = t.get("attempts").and_then(Json::as_arr).expect("attempts array");
    assert_eq!(attempts.len(), 2);
    assert_eq!(attempts[0].get("outcome").and_then(Json::as_str), Some("panic"));
    assert_eq!(attempts[0].get("degraded"), Some(&Json::Bool(false)));
    assert_eq!(attempts[1].get("degraded"), Some(&Json::Bool(true)));
    // Fault attribution names the injected fault, not just "a panic".
    let fault = t.get("fault").and_then(Json::as_str).expect("fault attribution");
    assert!(fault.contains("injected"), "fault not attributed to injection: {fault}");
    // Stage events from BOTH attempts survived the worker's death.
    let stages = t.get("stages").and_then(Json::as_arr).expect("stages array");
    assert!(stages.iter().any(|e| e.get("attempt") == Some(&Json::Int(0))));
    assert!(stages.iter().any(|e| e.get("attempt") == Some(&Json::Int(1))));
    engine.shutdown();
}

/// A quarantined request stays recoverable from the flight recorder with
/// full span tree and fault attribution, even after later traffic.
#[test]
fn quarantined_request_is_recoverable_from_flight_recorder() {
    let c = corpus();
    let db_name = c.databases[0].schema().db_id.clone();
    let engine = Engine::start(untrained(), c.databases, harness_config(1, 8));

    let mut j = job(7, &db_name, "How many are there?", &["1".to_string()]);
    j.fault = Some(FaultSpec {
        panic_stage: Some(Stage::Preprocess),
        panic_times: 99,
        ..Default::default()
    });
    let trace_id = match engine.translate_blocking(j) {
        Response::Error { error, trace, .. } => {
            assert_eq!(error.kind, ErrorKind::Quarantined);
            trace.expect("quarantine must carry a trace digest").trace_id
        }
        other => panic!("expected quarantine, got {other:?}"),
    };
    // Later traffic does not evict the terminal trace.
    for i in 0..6 {
        let _ = engine.translate_blocking(job(20 + i, &db_name, "How many?", &["1".to_string()]));
    }
    let full = engine
        .flight()
        .find(trace_id)
        .expect("quarantined trace evicted from flight recorder");
    assert_eq!(full.outcome, "quarantined");
    assert_eq!(full.request_id, Some(7));
    assert!(full.fault.as_deref().unwrap_or("").contains("injected"));
    assert_eq!(full.attempts.len(), 2, "both kill attempts recorded");
    assert!(full.attempts.iter().all(|a| a.outcome == "panic"));
    assert!(!full.stages.is_empty(), "span tree lost");
    engine.shutdown();
}

/// `stats` delta windows reset on read; cumulative windows do not.
#[test]
fn stats_delta_windows_reset_between_reads() {
    let c = corpus();
    let db_name = c.databases[0].schema().db_id.clone();
    let engine = Engine::start(untrained(), c.databases, harness_config(1, 8));
    let submitted = |s: &Json| {
        s.get("requests")
            .and_then(|r| r.get("submitted"))
            .and_then(Json::as_f64)
            .unwrap_or(-1.0)
    };

    let _ = engine.translate_blocking(job(1, &db_name, "How many?", &["1".to_string()]));
    let d1 = engine.stats_json(true);
    assert_eq!(d1.get("window").and_then(Json::as_str), Some("delta"));
    assert_eq!(submitted(&d1), 1.0);
    // Nothing happened since: the next delta window is empty…
    let d2 = engine.stats_json(true);
    assert_eq!(submitted(&d2), 0.0);
    // …while the cumulative view still has everything, and gauges stay live.
    let cum = engine.stats_json(false);
    assert_eq!(cum.get("window").and_then(Json::as_str), Some("cumulative"));
    assert_eq!(submitted(&cum), 1.0);
    assert_eq!(
        cum.get("workers").and_then(|w| w.get("live")).and_then(Json::as_f64),
        Some(1.0)
    );
    // Both views carry an SLO section derived from the same window.
    for s in [&d2, &cum] {
        assert!(
            s.get("slo").and_then(|v| v.get("availability_burn")).is_some(),
            "missing slo section: {}",
            s.render()
        );
    }
    engine.shutdown();
}

/// Cross-request batching must be invisible in the responses: every job
/// decoded in a shared step batch returns exactly what the in-process
/// reference pipeline produces for it alone, and a single in-flight request
/// on the batched path takes the identical PR 6 code path.
#[test]
fn batched_engine_matches_unbatched_reference_bitwise() {
    let reference = trained();
    let ref_corpus = corpus();
    let engine_corpus = corpus();
    let cfg = ServeConfig {
        batch_window_us: 30_000,
        batch_max: 8,
        ..harness_config(2, 16)
    };
    let engine = Engine::start(trained(), engine_corpus.databases, cfg);

    let expectations: Vec<_> = ref_corpus
        .dev
        .iter()
        .take(8)
        .map(|sample| {
            let db = ref_corpus.db(sample);
            (
                db.schema().db_id.clone(),
                sample,
                reference
                    .try_translate(db, &sample.question, Some(&sample.values))
                    .expect("reference translation"),
            )
        })
        .collect();

    // Phase 1: sequential singles — a batch of one must be bit-identical.
    // Phase 2: all eight submitted at once so the 30 ms window co-batches
    // them, each response still bit-identical to its solo reference.
    for concurrent in [false, true] {
        let responses: Vec<Response> = if concurrent {
            let rxs: Vec<_> = expectations
                .iter()
                .enumerate()
                .map(|(i, (db_id, sample, _))| {
                    engine
                        .submit(job(i as i64, db_id, &sample.question, &sample.values))
                        .expect("job admitted")
                })
                .collect();
            rxs.into_iter().map(|rx| rx.recv().expect("reply")).collect()
        } else {
            expectations
                .iter()
                .enumerate()
                .map(|(i, (db_id, sample, _))| {
                    engine.translate_blocking(job(i as i64, db_id, &sample.question, &sample.values))
                })
                .collect()
        };
        for (i, resp) in responses.into_iter().enumerate() {
            let expect = &expectations[i].2;
            match (expect.sql.as_ref(), resp) {
                (Some(sql), Response::Translated { body, .. }) => {
                    assert_eq!(body.sql, sql.to_string(), "SQL diverged on dev[{i}]");
                    assert_eq!(body.values, expect.selected_values().unwrap());
                    let expect_rows: Vec<Vec<String>> = expect
                        .result
                        .as_ref()
                        .map(|rs| {
                            rs.rows
                                .iter()
                                .map(|r| r.iter().map(|d| d.to_string()).collect())
                                .collect()
                        })
                        .unwrap_or_default();
                    assert_eq!(body.rows, expect_rows, "rows diverged on dev[{i}]");
                    assert!(!body.degraded && body.retries == 0);
                    let t = body.trace.expect("trace digest");
                    assert!(t.batch_size >= 1, "decoded request missing batch size");
                }
                (None, resp) => expect_error(resp, ErrorKind::TranslateFailed),
                (Some(_), other) => panic!("expected translation, got {other:?}"),
            }
        }
    }

    // The batching counters must reflect real shared batches: every decoded
    // job is a member of exactly one batch, and each batch flushed either on
    // the window timer or on reaching `batch_max`.
    let stats = engine.stats_json(false);
    let b = stats.get("batching").expect("stats must expose a batching section");
    let num = |k: &str| b.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
    assert_eq!(num("window_us"), 30_000.0);
    assert!(num("batches") >= 1.0, "no batches formed: {}", stats.render());
    assert_eq!(
        num("window_flushes") + num("size_flushes"),
        num("batches"),
        "every batch flushes exactly once: {}",
        stats.render()
    );
    assert!(num("members") >= num("batches"));
    let mean = b.get("occupancy").and_then(|o| o.get("mean")).and_then(Json::as_f64).unwrap();
    assert!(
        mean > 1.0,
        "concurrent phase never co-batched requests (mean occupancy {mean}): {}",
        stats.render()
    );
    engine.shutdown();
    assert_eq!(engine.live_workers(), 0);
}

/// A degraded scalar retry must never share a step batch: the scalar tier
/// is not bit-compatible with the fused kernels, so the engine decodes it
/// alone. Co-batched innocents of the panicking attempt complete cleanly
/// without spending any of their own retry budget.
#[test]
fn degraded_retry_decodes_alone_and_innocents_complete_clean() {
    let c = corpus();
    let db_name = c.databases[0].schema().db_id.clone();
    let cfg = ServeConfig {
        batch_window_us: 30_000,
        batch_max: 8,
        ..harness_config(1, 16)
    };
    let engine = Engine::start(untrained(), c.databases, cfg);
    let gold = vec!["1".to_string()];

    // The faulty job goes in first so the 30 ms window co-batches the three
    // clean ones behind it; its decode-stage panic then aborts the batch.
    let mut bad = job(50, &db_name, "How many are there?", &gold);
    bad.fault = Some(FaultSpec {
        panic_stage: Some(Stage::EncodeDecode),
        panic_times: 1,
        ..Default::default()
    });
    let bad_rx = engine.submit(bad).expect("faulty job admitted");
    let clean_rx: Vec<_> = (0..3)
        .map(|i| {
            engine
                .submit(job(60 + i, &db_name, "How many are there?", &gold))
                .expect("clean job admitted")
        })
        .collect();

    let summary = match bad_rx.recv().expect("faulty reply") {
        Response::Translated { body, .. } => {
            assert_eq!(body.retries, 1);
            assert!(body.degraded, "post-panic retry must take the scalar path");
            body.trace.expect("trace digest")
        }
        Response::Error { error, trace, .. } => {
            assert_eq!(error.kind, ErrorKind::TranslateFailed, "unexpected: {error}");
            trace.expect("trace digest")
        }
        other => panic!("unexpected response: {other:?}"),
    };
    assert_eq!(
        summary.batch_size, 1,
        "degraded scalar retry joined a shared batch (size {})",
        summary.batch_size
    );

    let mut cobatched = 0u32;
    for rx in clean_rx {
        match rx.recv().expect("clean reply") {
            Response::Translated { body, .. } => {
                assert!(!body.degraded, "innocent co-batched job was degraded");
                assert_eq!(body.retries, 0, "innocent job charged a retry");
                let t = body.trace.expect("trace digest");
                cobatched += u32::from(t.batch_size >= 2);
            }
            Response::Error { error, trace, .. } => {
                assert_eq!(error.kind, ErrorKind::TranslateFailed, "unexpected: {error}");
                let t = trace.expect("trace digest");
                assert_eq!(t.attempts, 1, "innocent job re-attempted");
                cobatched += u32::from(t.batch_size >= 2);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(
        cobatched >= 2,
        "clean jobs were never co-batched after the abort — the scenario is vacuous"
    );

    // Exactly one worker died and exactly one replacement spawned.
    assert_eq!(engine.stats().worker_panics(), 1);
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert_eq!(engine.live_workers(), 1, "worker pool leaked after batch abort");
    engine.shutdown();
}

#[test]
fn unix_socket_roundtrip() {
    let c = corpus();
    let db_name = c.databases[0].schema().db_id.clone();
    let engine = Engine::start(untrained(), c.databases, ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let sock = std::env::temp_dir().join(format!("vn-serve-test-{}.sock", std::process::id()));
    let server = {
        let sock = sock.clone();
        std::thread::spawn(move || serve_unix(engine, &sock))
    };

    // Connect (the listener needs a moment to bind).
    let mut client = None;
    for _ in 0..100 {
        match Client::connect(&sock) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let mut client = client.expect("could not connect to serve socket");

    // Liveness.
    match client.roundtrip(&verb_frame(1, "ping")).unwrap() {
        Response::Pong { id } => assert_eq!(id, Some(1)),
        other => panic!("expected pong, got {other:?}"),
    }

    // A malformed frame gets a typed bad_request — and the connection
    // stays usable.
    match client.roundtrip_raw("this is not json").unwrap() {
        Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::BadRequest),
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Malformed with a recoverable id: the id is echoed back.
    match client.roundtrip_raw(r#"{"id":42,"verb":"warp"}"#).unwrap() {
        Response::Error { id, error, .. } => {
            assert_eq!(id, Some(42));
            assert_eq!(error.kind, ErrorKind::BadRequest);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }

    // A real translate round trip (untrained model: typed outcome either
    // way), then an unknown database.
    let gold = vec!["1".to_string()];
    let frame = translate_frame(2, &db_name, "How many are there?", None, Some(&gold), None);
    match client.roundtrip(&frame).unwrap() {
        Response::Translated { id, .. } => assert_eq!(id, Some(2)),
        Response::Error { id, error, .. } => {
            assert_eq!(id, Some(2));
            assert_eq!(error.kind, ErrorKind::TranslateFailed, "unexpected: {error}");
        }
        other => panic!("unexpected response: {other:?}"),
    }
    let frame = translate_frame(3, "nope", "How many?", None, Some(&gold), None);
    match client.roundtrip(&frame).unwrap() {
        Response::Error { error, .. } => assert_eq!(error.kind, ErrorKind::UnknownDb),
        other => panic!("expected unknown_db, got {other:?}"),
    }

    // Stats over the wire (cumulative by default, delta on request).
    match client.roundtrip(&verb_frame(4, "stats")).unwrap() {
        Response::Stats { stats, .. } => {
            assert!(stats.get("queue").is_some() && stats.get("workers").is_some());
            assert_eq!(stats.get("window").and_then(Json::as_str), Some("cumulative"));
        }
        other => panic!("expected stats, got {other:?}"),
    }
    match client.roundtrip_raw(r#"{"id":6,"verb":"stats","window":"delta"}"#).unwrap() {
        Response::Stats { stats, .. } => {
            assert_eq!(stats.get("window").and_then(Json::as_str), Some("delta"));
        }
        other => panic!("expected delta stats, got {other:?}"),
    }

    // The trace verb dumps the flight recorder.
    match client.roundtrip_raw(r#"{"id":7,"verb":"trace","last":4}"#).unwrap() {
        Response::Traces { id, traces } => {
            assert_eq!(id, Some(7));
            let arr = traces.get("traces").and_then(Json::as_arr).expect("traces array");
            assert!(!arr.is_empty(), "translate above must be retained");
        }
        other => panic!("expected traces, got {other:?}"),
    }

    // Graceful shutdown: acknowledged, server thread exits, socket gone.
    match client.roundtrip(&verb_frame(5, "shutdown")).unwrap() {
        Response::ShutdownAck { id } => assert_eq!(id, Some(5)),
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server.join().expect("server thread").expect("serve_unix");
    assert!(!sock.exists(), "socket file not cleaned up");
}
