//! Deterministic differential fuzzer CLI.
//!
//! ```text
//! vn-fuzz [--cases N] [--seed S] [--replay CASE_SEED] [--inject-divergence]
//!         [--fail-log PATH] [--quant N] [--serve N] [--serve-replay CASE_SEED]
//!         [--report PATH]
//! ```
//!
//! `--quant N` switches to kernel mode: `N` seeded cases fuzz the packed and
//! int8-quantized matmul kernels against their scalar oracles
//! (`valuenet_verify::quant_fuzz`) instead of the SQL executor.
//!
//! `--serve N` switches to serving mode: a trained tiny pipeline is served
//! over a Unix socket and `N` seeded fault cases (worker panics, stage
//! stalls, overload bursts, malformed frames) are fired at it
//! (`valuenet_verify::serve_fault`); `--serve-replay` re-runs one serve
//! case seed bit-identically, and `--report PATH` merges the serve-mode
//! results into an existing `run_report.json` as a
//! `serve_fault_injection` section.
//!
//! Runs `N` executor-vs-oracle cases derived from `S` (see
//! `valuenet_verify::fuzz`). Exits non-zero if any case diverges, printing a
//! shrunk reproducer per failure; `--replay` re-runs a single case seed (as
//! printed in a failure report) bit-identically. `--fail-log` additionally
//! writes every failing seed and report to a file, one block per failure —
//! CI uploads this as an artifact.

use std::process::ExitCode;

use valuenet_verify::{run_case, run_fuzz, CaseOutcome, FuzzConfig};

fn main() -> ExitCode {
    // Per-case spans and the fuzz.* outcome counters flow through
    // valuenet-obs; OBS=1 prints the span/counter summary, OBS_JSONL streams
    // per-case timings for CI to validate.
    valuenet_obs::init_from_env();
    let mut cfg = FuzzConfig { cases: 1000, seed: 42, inject_divergence: false };
    let mut replay: Option<u64> = None;
    let mut fail_log: Option<String> = None;
    let mut quant: Option<usize> = None;
    let mut serve: Option<usize> = None;
    let mut serve_replay: Option<u64> = None;
    let mut report_path: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut take = |what: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{arg} requires {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--cases" => {
                cfg.cases = parse_num(&take("a count")) as usize;
            }
            "--seed" => {
                cfg.seed = parse_num(&take("a seed"));
            }
            "--replay" => {
                replay = Some(parse_num(&take("a case seed")));
            }
            "--inject-divergence" => cfg.inject_divergence = true,
            "--fail-log" => fail_log = Some(take("a path")),
            "--quant" => {
                quant = Some(parse_num(&take("a case count")) as usize);
            }
            "--serve" => {
                serve = Some(parse_num(&take("a case count")) as usize);
            }
            "--serve-replay" => {
                serve_replay = Some(parse_num(&take("a case seed")));
            }
            "--report" => report_path = Some(take("a path")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: vn-fuzz [--cases N] [--seed S] [--replay CASE_SEED] \
                     [--inject-divergence] [--fail-log PATH] [--quant N] \
                     [--serve N] [--serve-replay CASE_SEED] [--report PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(seed) = serve_replay {
        // Serve mode, single case: same fixture, one seed, bit-identical.
        let fx = valuenet_verify::ServeFixture::start();
        let mut report = valuenet_verify::ServeFuzzReport::default();
        let outcome = valuenet_verify::run_serve_case(&fx, &mut report, seed);
        fx.finish(&mut report);
        valuenet_obs::finish();
        return match outcome {
            Ok(desc) if report.failures.is_empty() => {
                println!("serve replay {seed}: {desc}");
                ExitCode::SUCCESS
            }
            Ok(desc) => {
                println!("serve replay {seed}: {desc}");
                for (s, f) in &report.failures {
                    println!("  INVARIANT VIOLATED (seed {s}): {f}");
                }
                ExitCode::FAILURE
            }
            Err(desc) => {
                println!("serve replay {seed}: FAILED\n  {desc}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(cases) = serve {
        // Serve mode: seeded fault injection against a live serving socket.
        let report =
            valuenet_verify::run_serve_fuzz(&valuenet_verify::ServeFuzzConfig { cases, seed: cfg.seed });
        println!(
            "vn-fuzz --serve: {} cases (seed {}): {} clean ({} bit-identical), \
             {} panics injected ({} recovered, {} quarantined), {} deadline hits, \
             {} bursts ({} shed), {} malformed frames, {} batched cases \
             ({} members identical, {} members / {} step batches); \
             workers {}/{} live, {} panics / {} respawns; {} failures",
            report.cases,
            cfg.seed,
            report.clean,
            report.bit_identical,
            report.injected_panics,
            report.recovered,
            report.quarantined,
            report.deadline_hits,
            report.bursts,
            report.shed,
            report.malformed,
            report.batched,
            report.batched_identical,
            report.batch_members,
            report.batches,
            report.live_workers,
            report.configured_workers,
            report.worker_panics,
            report.worker_respawns,
            report.failures.len()
        );
        for (seed, failure) in &report.failures {
            println!(
                "\n=== serve failure (replay with: vn-fuzz --serve-replay {seed}) ===\n{failure}"
            );
        }
        if let Some(path) = &report_path {
            if let Err(e) = merge_serve_report(path, &report) {
                eprintln!("failed to update {path}: {e}");
            } else {
                println!("serve_fault_injection section merged into {path}");
            }
        }
        valuenet_obs::finish();
        return if report.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if let Some(cases) = quant {
        // Kernel mode: fuzz the packed / int8 matmul kernels against their
        // scalar oracles instead of the SQL executor.
        let report = valuenet_verify::run_quant_fuzz(cases, cfg.seed);
        println!(
            "vn-fuzz --quant: {} kernel cases (seed {}): {} failures",
            report.cases,
            cfg.seed,
            report.failures.len()
        );
        for (seed, desc) in &report.failures {
            println!("  seed {seed}: {desc}");
        }
        valuenet_obs::finish();
        return if report.failures.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if let Some(seed) = replay {
        let code = match run_case(seed, cfg.inject_divergence) {
            CaseOutcome::Agree { result_rows } => {
                println!("replay {seed}: executor and oracle agree ({result_rows} rows)");
                ExitCode::SUCCESS
            }
            CaseOutcome::BothErrored => {
                println!("replay {seed}: both executor and oracle errored (agreement)");
                ExitCode::SUCCESS
            }
            CaseOutcome::Divergence { report, .. } => {
                println!("replay {seed}: DIVERGENCE\n{report}");
                ExitCode::FAILURE
            }
        };
        valuenet_obs::finish();
        return code;
    }

    let report = run_fuzz(&cfg);
    println!(
        "vn-fuzz: {} cases (seed {}): {} agreements, {} both-errored, {} divergences",
        report.cases,
        cfg.seed,
        report.agreements,
        report.both_errored,
        report.divergences.len()
    );
    for (seed, failure) in &report.divergences {
        println!("\n=== divergence (replay with: vn-fuzz --replay {seed}) ===\n{failure}");
    }
    if let Some(path) = fail_log {
        if !report.divergences.is_empty() {
            let mut blob = String::new();
            for (seed, failure) in &report.divergences {
                blob.push_str(&format!("=== seed {seed} ===\n{failure}\n"));
            }
            if let Err(e) = std::fs::write(&path, blob) {
                eprintln!("failed to write {path}: {e}");
            }
        }
    }
    valuenet_obs::finish();
    if report.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Merges the serve-mode results into `run_report.json` as a
/// `serve_fault_injection` section (replacing any previous one), creating
/// the file if needed — the versioned envelope is preserved.
fn merge_serve_report(
    path: &str,
    report: &valuenet_verify::ServeFuzzReport,
) -> Result<(), String> {
    use valuenet_obs::json::Json;
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))? {
            Json::Obj(entries) => entries,
            _ => return Err(format!("{path} is not a JSON object")),
        },
        Err(_) => vec![(
            "schema_version".to_string(),
            Json::Int(valuenet_obs::RUN_REPORT_SCHEMA_VERSION),
        )],
    };
    entries.retain(|(k, _)| k != "serve_fault_injection");
    entries.push(("serve_fault_injection".to_string(), report.to_json()));
    std::fs::write(path, format!("{}\n", Json::Obj(entries).render()))
        .map_err(|e| format!("write {path}: {e}"))
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got {s:?}");
        std::process::exit(2);
    })
}
