//! Deterministic fuzz harness for the packed and int8-quantized matmul
//! kernels.
//!
//! Each case derives a matrix shape and contents from its seed (the same
//! SplitMix64 discipline as [`crate::fuzz`]) and checks three invariants:
//!
//! 1. the packed f32 kernel is **bit-identical** to the scalar blocked
//!    matmul at every SIMD level the host supports;
//! 2. the quantized kernel is **bit-identical across SIMD levels** (the AVX2
//!    int8 path must match its scalar reference exactly);
//! 3. the quantized result stays within the analytic error budget
//!    `0.5 · scale · Σ|a_l|` per output element (each weight is off by at
//!    most half a quantization step).
//!
//! Shapes deliberately cover the decoder's hot case — a single-row
//! activation (`1×k`) against a wide weight — plus odd, non-lane-multiple
//! sizes that exercise every tail path.

use valuenet_tensor::packed::{PackedMatrix, QuantizedMatrix};
use valuenet_tensor::simd::{detected_level, SimdLevel};
use valuenet_tensor::Tensor;

/// Outcome of a [`run_quant_fuzz`] sweep.
pub struct QuantFuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Human-readable description of each failing case, with its seed.
    pub failures: Vec<(u64, String)>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn pseudo_data(state: &mut u64, n: usize) -> Vec<f32> {
    (0..n).map(|_| (splitmix(state) >> 40) as f32 / 8388608.0 * 4.0 - 2.0).collect()
}

fn levels() -> Vec<SimdLevel> {
    let top = detected_level();
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= top)
        .collect()
}

/// Runs one seeded case; `None` on success, a failure description otherwise.
pub fn run_quant_case(seed: u64) -> Option<String> {
    let mut s = seed;
    // Every third case pins the batch to one row — the beam-step shape the
    // decoder spends its time in. Sizes straddle the 4/8-lane boundaries.
    let n = if seed.is_multiple_of(3) { 1 } else { (splitmix(&mut s) % 6 + 1) as usize };
    let k = (splitmix(&mut s) % 40 + 1) as usize;
    let m = (splitmix(&mut s) % 70 + 1) as usize;
    let a = Tensor::from_vec(n, k, pseudo_data(&mut s, n * k));
    let w = Tensor::from_vec(k, m, pseudo_data(&mut s, k * m));

    let oracle = a.matmul_with_level(&w, SimdLevel::Scalar);
    let packed = PackedMatrix::from_tensor(&w);
    for lvl in levels() {
        let got = packed.matmul_at(lvl, &a);
        if got.as_slice().iter().zip(oracle.as_slice()).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return Some(format!(
                "packed f32 matmul diverges from scalar oracle at {} ({n}x{k} @ {k}x{m})",
                lvl.name()
            ));
        }
    }

    let quant = QuantizedMatrix::quantize(w.as_slice(), k, m, None);
    let q_ref = quant.matmul_at(SimdLevel::Scalar, &a);
    for lvl in levels() {
        let got = quant.matmul_at(lvl, &a);
        if got.as_slice().iter().zip(q_ref.as_slice()).any(|(x, y)| x.to_bits() != y.to_bits()) {
            return Some(format!(
                "quantized matmul not bit-identical across levels at {} ({n}x{k} @ {k}x{m})",
                lvl.name()
            ));
        }
    }

    let scale = quant.scale();
    for i in 0..n {
        let budget: f32 =
            a.row(i).iter().map(|v| v.abs()).sum::<f32>() * 0.5 * scale * 1.01 + 1e-5;
        for j in 0..m {
            let err = (q_ref.get(i, j) - oracle.get(i, j)).abs();
            if err > budget {
                return Some(format!(
                    "quantized error {err} exceeds budget {budget} at ({i},{j}) \
                     ({n}x{k} @ {k}x{m}, scale {scale})"
                ));
            }
        }
    }
    None
}

static QUANT_AGREE: valuenet_obs::Counter = valuenet_obs::Counter::new("fuzz.quant.agree");
static QUANT_DIVERGE: valuenet_obs::Counter = valuenet_obs::Counter::new("fuzz.quant.divergence");

/// Runs `cases` seeded quantization cases derived from `seed`.
pub fn run_quant_fuzz(cases: usize, seed: u64) -> QuantFuzzReport {
    let _span = valuenet_obs::span("fuzz.quant");
    let mut failures = Vec::new();
    for i in 0..cases {
        let case_seed = crate::case_seed(seed, i as u64);
        if let Some(desc) = run_quant_case(case_seed) {
            QUANT_DIVERGE.add(1);
            failures.push((case_seed, desc));
        } else {
            QUANT_AGREE.add(1);
        }
    }
    QuantFuzzReport { cases, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quant_fuzz_smoke_is_clean() {
        let report = run_quant_fuzz(64, 42);
        assert_eq!(report.cases, 64);
        assert!(
            report.failures.is_empty(),
            "kernel fuzz failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn cases_are_deterministic() {
        // Same seed, same verdicts (all passing here, but the derived shapes
        // must at least be stable across runs for --replay-style debugging).
        for i in 0..8 {
            let seed = crate::case_seed(7, i);
            assert_eq!(run_quant_case(seed).is_none(), run_quant_case(seed).is_none());
        }
    }
}
