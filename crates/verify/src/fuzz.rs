//! Deterministic differential fuzzing.
//!
//! Each case is fully determined by a single `u64` seed: the seed drives the
//! schema/data generator and the SemQL tree generator, and every later step
//! (action round trip, lowering, printing, both executions, shrinking) is
//! deterministic. Case seeds are derived from the base seed with a
//! SplitMix64-style finalizer, so case `i` of `--seed S` is the same on
//! every machine and `--replay <case seed>` reproduces a failure
//! bit-identically.
//!
//! A case checks the whole chain the paper's Execution Accuracy metric
//! depends on:
//!
//! 1. `ast_to_actions` → `actions_to_ast` must be the identity on the tree;
//! 2. lowering must succeed (generated schemas are FK-connected, so a join
//!    tree always exists);
//! 3. the printed SQL must survive `check_round_trip` and re-parse to the
//!    lowered statement;
//! 4. `valuenet_exec::execute` and [`crate::oracle::reference_execute`]
//!    must either both fail or produce equivalent results under
//!    [`ResultSet::result_eq`].

use std::fmt::Write as _;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_schema::SchemaGraph;
use valuenet_semql::{actions_to_ast, ast_to_actions, to_sql};
use valuenet_sql::check_round_trip;
use valuenet_storage::Datum;

use crate::schema_gen::{describe_database, gen_database};
use crate::shrink::{shrink_case, Case};
use crate::tree_gen::gen_semql;

/// Fuzz run parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cases to run.
    pub cases: usize,
    /// Base seed for the case-seed stream.
    pub seed: u64,
    /// Deterministically corrupt the executor's result (harness self-test:
    /// every case must then diverge, and `--replay` must reproduce it).
    pub inject_divergence: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig { cases: 1000, seed: 42, inject_divergence: false }
    }
}

/// Outcome of a single case.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// Executor and oracle produced equivalent results.
    Agree {
        /// Rows in the (executor's) result.
        result_rows: usize,
    },
    /// Both sides failed to execute the statement — counted separately, but
    /// not a divergence.
    BothErrored,
    /// The chain broke somewhere; `report` describes the *shrunk* case.
    Divergence {
        /// The exact case seed (`--replay` input).
        seed: u64,
        /// Human-readable failure report, deterministic for a given seed.
        report: String,
    },
}

/// Aggregate statistics of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Cases where executor and oracle agreed on a result.
    pub agreements: usize,
    /// Cases where both sides errored.
    pub both_errored: usize,
    /// `(case seed, shrunk report)` for every divergence.
    pub divergences: Vec<(u64, String)>,
}

/// Derives the seed of case `index` from the base seed (SplitMix64-style
/// finalizer, mirroring the trainer's per-sample seeding discipline).
pub fn case_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static FUZZ_AGREEMENTS: valuenet_obs::Counter = valuenet_obs::Counter::new("fuzz.agreements");
static FUZZ_BOTH_ERRORED: valuenet_obs::Counter =
    valuenet_obs::Counter::new("fuzz.both_errored");
static FUZZ_DIVERGENCES: valuenet_obs::Counter = valuenet_obs::Counter::new("fuzz.divergences");
static FUZZ_RESULT_ROWS: valuenet_obs::Histogram =
    valuenet_obs::Histogram::new("fuzz.result_rows");

/// Runs `cfg.cases` cases and tallies the outcomes. Each case runs under a
/// `fuzz.case` span; outcome totals go to the `fuzz.*` counters.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let _span = valuenet_obs::span("fuzz");
    let mut report = FuzzReport::default();
    for i in 0..cfg.cases {
        let seed = case_seed(cfg.seed, i as u64);
        let _case_span = valuenet_obs::span("fuzz.case");
        match run_case(seed, cfg.inject_divergence) {
            CaseOutcome::Agree { result_rows } => {
                FUZZ_AGREEMENTS.add(1);
                FUZZ_RESULT_ROWS.record(result_rows as u64);
                report.agreements += 1;
            }
            CaseOutcome::BothErrored => {
                FUZZ_BOTH_ERRORED.add(1);
                report.both_errored += 1;
            }
            CaseOutcome::Divergence { seed, report: r } => {
                FUZZ_DIVERGENCES.add(1);
                report.divergences.push((seed, r));
            }
        }
        report.cases += 1;
    }
    report
}

/// Runs one case from its seed. Deterministic: calling this twice with the
/// same arguments produces identical outcomes (including report text).
pub fn run_case(seed: u64, inject: bool) -> CaseOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let db = gen_database(&mut rng);
    let (tree, values) = gen_semql(&mut rng, &db);
    let case = Case::from_database(&db, tree, values);
    match check_case(&case, inject) {
        Check::Agree { rows } => CaseOutcome::Agree { result_rows: rows },
        Check::BothErrored => CaseOutcome::BothErrored,
        Check::Diverged(_) => {
            let shrunk = shrink_case(case, |c| matches!(check_case(c, inject), Check::Diverged(_)));
            CaseOutcome::Divergence { seed, report: render_failure(seed, &shrunk, inject) }
        }
    }
}

enum Check {
    Agree { rows: usize },
    BothErrored,
    Diverged(String),
}

/// Runs the full verification chain on a case.
fn check_case(case: &Case, inject: bool) -> Check {
    // 1. Action round trip.
    let actions = ast_to_actions(&case.tree);
    match actions_to_ast(&actions) {
        Ok(back) if back == case.tree => {}
        Ok(back) => {
            return Check::Diverged(format!(
                "action round trip changed the tree:\n  original: {:?}\n  rebuilt:  {back:?}",
                case.tree
            ))
        }
        Err(e) => {
            return Check::Diverged(format!(
                "actions failed to parse back: {e}\n  tree: {:?}\n  actions: {actions:?}",
                case.tree
            ))
        }
    }

    // 2. Lowering.
    let db = case.database();
    let graph = SchemaGraph::new(db.schema());
    let stmt = match to_sql(&case.tree, db.schema(), &graph, &case.values) {
        Ok(s) => s,
        Err(e) => return Check::Diverged(format!("lowering failed: {e}\n  tree: {:?}", case.tree)),
    };

    // 3. Printer round trip, and print → parse identity on the lowered AST.
    let sql = stmt.to_string();
    match check_round_trip(&sql) {
        Ok(reparsed) if reparsed == stmt => {}
        Ok(_) => {
            return Check::Diverged(format!(
                "printed SQL parsed back to a different statement: {sql}"
            ))
        }
        Err(e) => return Check::Diverged(format!("printer round trip failed: {e}")),
    }

    // 4. Differential execution.
    let exec_result = valuenet_exec::execute(&db, &stmt);
    let oracle_result = crate::oracle::reference_execute(&db, &stmt);
    match (exec_result, oracle_result) {
        (Ok(mut exec), Ok(oracle)) => {
            if inject {
                // Deterministic corruption for the harness self-test.
                if exec.rows.is_empty() {
                    exec.rows.push(vec![Datum::Int(41)]);
                } else {
                    exec.rows.pop();
                }
            }
            if exec.ordered != oracle.ordered {
                return Check::Diverged(format!(
                    "ordered flags differ (executor {}, oracle {}) for: {sql}",
                    exec.ordered, oracle.ordered
                ));
            }
            if exec.result_eq(&oracle) {
                Check::Agree { rows: exec.rows.len() }
            } else {
                Check::Diverged(format!(
                    "results differ for: {sql}\n--- executor ---\n{exec}\n--- oracle ---\n{oracle}"
                ))
            }
        }
        (Err(_), Err(_)) => Check::BothErrored,
        (Ok(exec), Err(e)) => Check::Diverged(format!(
            "oracle failed ({e}) but executor succeeded for: {sql}\n--- executor ---\n{exec}"
        )),
        (Err(e), Ok(oracle)) => Check::Diverged(format!(
            "executor failed ({e}) but oracle succeeded for: {sql}\n--- oracle ---\n{oracle}"
        )),
    }
}

/// Renders a failure report for an (already shrunk) case.
fn render_failure(seed: u64, case: &Case, inject: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "seed: {seed}");
    let desc = match check_case(case, inject) {
        Check::Diverged(d) => d,
        // Shrinking only accepts mutations that keep the case failing, so
        // the shrunk case must still diverge; anything else is a harness
        // bug worth surfacing in the report itself.
        _ => "shrunk case no longer diverges (shrinker bug)".to_string(),
    };
    let _ = writeln!(out, "{desc}");
    let _ = writeln!(out, "database:\n{}", describe_database(&case.database()));
    out
}
