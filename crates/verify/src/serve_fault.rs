//! Deterministic fault injection against the serving engine.
//!
//! `vn-fuzz --serve N` stands up a real server — trained tiny pipeline,
//! bounded queue, worker pool, Unix socket — and fires `N` seeded cases at
//! it through the wire protocol. Case `i` of base seed `S` is
//! [`crate::fuzz::case_seed`]`(S, i)`, exactly like the executor fuzzer, and
//! `--serve-replay <case seed>` re-runs one case bit-identically.
//!
//! Each case seed deterministically picks a scenario:
//!
//! * **clean** — a normal request; the response must be *bit-identical*
//!   (SQL text, selected values, result rows, row order) to the same
//!   question run through the single-process [`Pipeline`], trained
//!   identically.
//! * **panic** — the request carries a [`FaultSpec`] panicking the worker
//!   once at a seeded stage; the engine must catch it, respawn the worker
//!   and answer after a degraded-path retry.
//! * **poison** — the fault panics on every attempt; the request must be
//!   quarantined after two worker kills, and the pool must survive.
//! * **deadline** — a seeded stage stalls longer than the request's
//!   deadline; the reply must be a typed `deadline_exceeded`.
//! * **burst** — more concurrent requests than queue slots; every request
//!   must be answered exactly once (translated, or typed overload/deadline
//!   rejection) with no deadlock.
//! * **malformed** — protocol garbage on the wire; the server must answer
//!   `bad_request` and the same connection must keep working.
//! * **batched-concurrent** — several clean requests fired at once so the
//!   engine's batch window merges their decodes into shared step batches;
//!   every member must still be bit-identical to its solo single-process
//!   reference. A seeded fraction adds a member that panics mid-batch: the
//!   co-batched members must complete clean (no retries, not degraded)
//!   while the faulty one recovers on the degraded path — decoding alone,
//!   never inside a shared batch.
//!
//! The engine under test runs with cross-request batching *enabled*
//! (a 2 ms window), so every family above also exercises the batched
//! dispatch path.
//!
//! After the cases, the harness asserts the pool leaked nothing: live
//! workers equal the configured count, every caught panic has a matching
//! respawn, and the queue is empty — and that the run formed at least one
//! genuinely shared batch.

use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use valuenet_core::{train, ModelConfig, Pipeline, Stage, TrainConfig, ValueMode};
use valuenet_dataset::{generate, Corpus, CorpusConfig};
use valuenet_obs::json::Json;
use valuenet_serve::{
    serve_unix, translate_frame, verb_frame, Client, Engine, ErrorKind, FaultSpec,
    QuarantinePolicy, Response, RetryPolicy, ServeConfig, TraceSummary, Translated,
};

use crate::fuzz::case_seed;

/// Serve-mode fuzz parameters.
#[derive(Debug, Clone)]
pub struct ServeFuzzConfig {
    /// Number of seeded cases.
    pub cases: usize,
    /// Base seed of the case stream.
    pub seed: u64,
}

impl Default for ServeFuzzConfig {
    fn default() -> Self {
        ServeFuzzConfig { cases: 300, seed: 42 }
    }
}

/// Aggregate results of a serve-mode fuzz run.
#[derive(Debug, Clone, Default)]
pub struct ServeFuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Clean requests compared against the single-process pipeline.
    pub clean: usize,
    /// Clean requests whose responses were bit-identical to the reference.
    pub bit_identical: usize,
    /// Cases that injected at least one worker panic.
    pub injected_panics: usize,
    /// Panic cases the engine recovered from (typed answer after respawn).
    pub recovered: usize,
    /// Poison cases correctly quarantined.
    pub quarantined: usize,
    /// Deadline cases correctly rejected with `deadline_exceeded`.
    pub deadline_hits: usize,
    /// Overload bursts fired.
    pub bursts: usize,
    /// Requests shed by admission control across all bursts.
    pub shed: u64,
    /// Malformed frames answered with `bad_request`.
    pub malformed: usize,
    /// Batched-concurrent cases fired.
    pub batched: usize,
    /// Co-batched members verified bit-identical to their solo reference.
    pub batched_identical: usize,
    /// Decode step batches the engine formed across the run.
    pub batches: u64,
    /// Total members across those batches (> `batches` iff requests were
    /// ever genuinely co-batched).
    pub batch_members: u64,
    /// Responses whose trace digest was verified complete (id, attempts,
    /// per-stage totals).
    pub traced: usize,
    /// Worker panics the server counted.
    pub worker_panics: u64,
    /// Worker respawns the server counted (must equal `worker_panics`).
    pub worker_respawns: u64,
    /// Live workers at the end (must equal the configured pool size).
    pub live_workers: u64,
    /// Configured pool size.
    pub configured_workers: u64,
    /// `(case seed, description)` for every violated invariant.
    pub failures: Vec<(u64, String)>,
}

impl ServeFuzzReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The `run_report.json` section for this run.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cases", Json::Int(self.cases as i64)),
            ("clean", Json::Int(self.clean as i64)),
            ("bit_identical", Json::Int(self.bit_identical as i64)),
            ("injected_panics", Json::Int(self.injected_panics as i64)),
            ("recovered", Json::Int(self.recovered as i64)),
            ("quarantined", Json::Int(self.quarantined as i64)),
            ("deadline_hits", Json::Int(self.deadline_hits as i64)),
            ("bursts", Json::Int(self.bursts as i64)),
            ("shed", Json::Int(self.shed as i64)),
            ("malformed", Json::Int(self.malformed as i64)),
            ("batched", Json::Int(self.batched as i64)),
            ("batched_identical", Json::Int(self.batched_identical as i64)),
            ("batches", Json::Int(self.batches as i64)),
            ("batch_members", Json::Int(self.batch_members as i64)),
            ("traced", Json::Int(self.traced as i64)),
            ("worker_panics", Json::Int(self.worker_panics as i64)),
            ("worker_respawns", Json::Int(self.worker_respawns as i64)),
            ("live_workers", Json::Int(self.live_workers as i64)),
            ("configured_workers", Json::Int(self.configured_workers as i64)),
            ("failures", Json::Int(self.failures.len() as i64)),
        ])
    }
}

/// Fixed pool shape for the harness: small enough that bursts overflow the
/// queue, big enough that quarantine (two worker kills) never empties the
/// pool.
const WORKERS: usize = 2;
const QUEUE_CAPACITY: usize = 4;
/// Batch window of the engine under test. Wide enough (2 ms) that the
/// batched-concurrent family's near-simultaneous submits reliably land in
/// one assembly window on a loaded CI host.
const BATCH_WINDOW_US: u64 = 2_000;
/// At most a full queue's worth of members per step batch.
const BATCH_MAX: usize = QUEUE_CAPACITY;
/// Stages whose guard gate is reached on every translation (`Execute` only
/// runs when a hypothesis survives lowering, so it would make
/// deadline/panic cases model-dependent).
const ALWAYS_STAGES: [Stage; 4] =
    [Stage::Preprocess, Stage::ValueLookup, Stage::EncodeDecode, Stage::PostProcess];

/// A running server plus the bit-identical single-process reference.
pub struct ServeFixture {
    /// The reference pipeline (trained identically to the served one).
    pub reference: Pipeline,
    /// The corpus questions are drawn from.
    pub corpus: Corpus,
    sock: PathBuf,
    server: std::thread::JoinHandle<std::io::Result<()>>,
}

fn harness_corpus() -> Corpus {
    generate(&CorpusConfig {
        seed: 11,
        train_size: 48,
        dev_size: 16,
        rows_per_table: 10,
        ..CorpusConfig::default()
    })
}

fn harness_pipeline() -> Pipeline {
    let (pipeline, _) = train(
        &harness_corpus(),
        ValueMode::Light,
        ModelConfig::tiny(),
        &TrainConfig { epochs: 3, verbose: false, ..Default::default() },
    );
    pipeline
}

impl ServeFixture {
    /// Trains the pipeline (twice — deterministically identical), starts
    /// the engine and socket server.
    pub fn start() -> ServeFixture {
        let corpus = harness_corpus();
        let engine_corpus = harness_corpus();
        let engine = Engine::start(
            harness_pipeline(),
            engine_corpus.databases,
            ServeConfig {
                workers: WORKERS,
                queue_capacity: QUEUE_CAPACITY,
                allow_fault_injection: true,
                batch_window_us: BATCH_WINDOW_US,
                batch_max: BATCH_MAX,
                retry: RetryPolicy { max_retries: 2, base_ms: 5, cap_ms: 20 },
                quarantine: QuarantinePolicy { max_worker_kills: 2 },
                ..ServeConfig::default()
            },
        );
        let sock = std::env::temp_dir().join(format!(
            "vn-serve-fuzz-{}-{:x}.sock",
            std::process::id(),
            &corpus as *const _ as usize
        ));
        let server = {
            let sock = sock.clone();
            std::thread::spawn(move || serve_unix(engine, &sock))
        };
        // Wait for the socket to come up.
        for _ in 0..200 {
            if Client::connect(&sock).is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        ServeFixture { reference: harness_pipeline(), corpus, sock, server }
    }

    /// Opens a fresh connection with the anti-deadlock read timeout set.
    ///
    /// # Panics
    /// If the server is unreachable.
    pub fn client(&self) -> Client {
        let c = Client::connect(&self.sock).expect("connect to serve socket");
        c.set_read_timeout(Some(Duration::from_secs(60))).expect("set read timeout");
        c
    }

    /// Final pool-invariant check (via the `stats` verb), then shutdown.
    /// Returns the final stats payload.
    ///
    /// # Panics
    /// If the server thread itself failed.
    pub fn finish(self, report: &mut ServeFuzzReport) -> Json {
        let mut client = self.client();
        let stats = match client.roundtrip(&verb_frame(-1, "stats")) {
            Ok(Response::Stats { stats, .. }) => stats,
            other => {
                report
                    .failures
                    .push((0, format!("final stats verb failed: {other:?}")));
                Json::Null
            }
        };
        let pick = |path: &[&str]| -> u64 {
            let mut v = &stats;
            for k in path {
                match v.get(k) {
                    Some(next) => v = next,
                    None => return u64::MAX,
                }
            }
            v.as_f64().map(|f| f as u64).unwrap_or(u64::MAX)
        };
        report.worker_panics = pick(&["workers", "panics"]);
        report.worker_respawns = pick(&["workers", "respawns"]);
        report.live_workers = pick(&["workers", "live"]);
        report.configured_workers = pick(&["workers", "configured"]);
        if report.live_workers != report.configured_workers {
            report.failures.push((
                0,
                format!(
                    "worker leak: {} live of {} configured",
                    report.live_workers, report.configured_workers
                ),
            ));
        }
        if report.worker_panics != report.worker_respawns {
            report.failures.push((
                0,
                format!(
                    "respawn mismatch: {} panics, {} respawns",
                    report.worker_panics, report.worker_respawns
                ),
            ));
        }
        if pick(&["queue", "depth"]) != 0 {
            report.failures.push((0, "queue not drained after run".into()));
        }
        report.batches = pick(&["batching", "batches"]);
        report.batch_members = pick(&["batching", "members"]);
        if report.batched > 0 && report.batch_members <= report.batches {
            report.failures.push((
                0,
                format!(
                    "batching never co-batched concurrent requests: \
                     {} members across {} batches",
                    report.batch_members, report.batches
                ),
            ));
        }
        let _ = client.roundtrip(&verb_frame(-2, "shutdown"));
        let _ = self.server.join().expect("server thread panicked");
        stats
    }
}

/// Verifies a response-level trace digest is present and complete: nonzero
/// id, at least `min_attempts` attempts, and per-stage totals that include
/// `preprocess` (the gate every translation crosses). Returns the trace id.
fn check_trace(
    trace: Option<&TraceSummary>,
    min_attempts: u32,
    ctx: &str,
) -> Result<u64, String> {
    let t = trace.ok_or_else(|| format!("{ctx}: response carries no trace digest"))?;
    if t.trace_id == 0 {
        return Err(format!("{ctx}: zero trace id"));
    }
    if t.attempts < min_attempts {
        return Err(format!(
            "{ctx}: {} attempts in digest, expected >= {min_attempts}",
            t.attempts
        ));
    }
    if !t.stages.iter().any(|(s, _)| s == "preprocess") {
        return Err(format!("{ctx}: per-stage totals missing preprocess: {:?}", t.stages));
    }
    Ok(t.trace_id)
}

/// Fetches one trace from the flight recorder over the wire and verifies
/// the full span tree: terminal outcome, fault attribution, per-attempt
/// records and stage events.
fn check_flight_trace(
    client: &mut Client,
    rid: i64,
    trace_id: u64,
    outcome: &str,
    min_attempts: usize,
) -> Result<(), String> {
    let frame = Json::obj(vec![
        ("id", Json::Int(rid)),
        ("verb", Json::Str("trace".into())),
        ("trace_id", Json::Int(trace_id as i64)),
    ]);
    let resp = client
        .roundtrip(&frame)
        .map_err(|e| format!("trace verb roundtrip failed: {e}"))?;
    let Response::Traces { traces, .. } = resp else {
        return Err(format!("trace verb got unexpected frame: {resp:?}"));
    };
    let arr = traces
        .get("traces")
        .and_then(Json::as_arr)
        .ok_or("trace verb payload has no traces array")?;
    let [t] = arr else {
        return Err(format!(
            "trace {trace_id} not recoverable from flight recorder ({} matches)",
            arr.len()
        ));
    };
    if t.get("outcome").and_then(Json::as_str) != Some(outcome) {
        return Err(format!("flight trace outcome: {:?}, expected {outcome}", t.get("outcome")));
    }
    if t.get("fault").and_then(Json::as_str).is_none_or(str::is_empty) {
        return Err(format!("flight trace {trace_id} has no fault attribution"));
    }
    let attempts = t.get("attempts").and_then(Json::as_arr).map(<[Json]>::len).unwrap_or(0);
    if attempts < min_attempts {
        return Err(format!("flight trace has {attempts} attempts, expected >= {min_attempts}"));
    }
    if t.get("stages").and_then(Json::as_arr).is_none_or(<[Json]>::is_empty) {
        return Err(format!("flight trace {trace_id} lost its span tree"));
    }
    Ok(())
}

/// Bit-identity check between a served `Translated` body and the solo
/// single-process reference: SQL text, selected values, result rows and
/// row-order flag must all match exactly.
fn check_identical(
    expect: &valuenet_core::Prediction,
    body: &Translated,
    ctx: &str,
) -> Result<(), String> {
    let Some(sql) = expect.sql.as_ref() else {
        return Err(format!("{ctx}: reference produced no SQL but the server translated"));
    };
    let expect_values =
        expect.selected_values().map_err(|e| format!("{ctx}: reference values: {e}"))?;
    let expect_rows: Vec<Vec<String>> = expect
        .result
        .as_ref()
        .map(|rs| {
            rs.rows.iter().map(|r| r.iter().map(|d| d.to_string()).collect()).collect()
        })
        .unwrap_or_default();
    let expect_ordered = expect.result.as_ref().map(|rs| rs.ordered).unwrap_or(false);
    if body.sql != sql.to_string()
        || body.values != expect_values
        || body.rows != expect_rows
        || body.ordered != expect_ordered
    {
        return Err(format!(
            "{ctx}: served response diverged from pipeline: served sql `{}` vs `{}`",
            body.sql, sql
        ));
    }
    Ok(())
}

/// Runs one seeded case against the fixture. Returns a short outcome
/// description, or the invariant violation.
///
/// # Errors
/// A description of the violated invariant.
pub fn run_serve_case(fx: &ServeFixture, report: &mut ServeFuzzReport, seed: u64) -> Result<String, String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_train = fx.corpus.train.len();
    let n_all = n_train + fx.corpus.dev.len();
    let idx = rng.gen_range(0..n_all);
    let sample = if idx < n_train { &fx.corpus.train[idx] } else { &fx.corpus.dev[idx - n_train] };
    let db = fx.corpus.db(sample);
    let db_name = db.schema().db_id.clone();
    let rid = (seed & 0x7FFF_FFFF) as i64;

    match rng.gen_range(0..100u32) {
        // ------------------------------------------------ clean: bit-identity
        0..=34 => {
            report.clean += 1;
            let expect = fx
                .reference
                .try_translate(db, &sample.question, Some(&sample.values))
                .map_err(|e| format!("reference pipeline failed: {e}"))?;
            let frame = translate_frame(
                rid,
                &db_name,
                &sample.question,
                None,
                Some(&sample.values),
                None,
            );
            let resp = fx
                .client()
                .roundtrip(&frame)
                .map_err(|e| format!("clean roundtrip failed: {e}"))?;
            match (expect.sql.as_ref(), resp) {
                (Some(_), Response::Translated { body, .. }) => {
                    check_trace(body.trace.as_ref(), 1, "clean translated")?;
                    report.traced += 1;
                    check_identical(&expect, &body, "clean")?;
                    report.bit_identical += 1;
                    Ok(format!("clean: identical ({} rows)", body.rows.len()))
                }
                (None, Response::Error { error, trace, .. })
                    if error.kind == ErrorKind::TranslateFailed =>
                {
                    check_trace(trace.as_ref(), 1, "clean translate_failed")?;
                    report.traced += 1;
                    report.bit_identical += 1;
                    Ok("clean: both failed to translate".into())
                }
                (gold, got) => Err(format!(
                    "clean outcome mismatch: reference sql {:?}, served {:?}",
                    gold.map(|s| s.to_string()),
                    got
                )),
            }
        }
        // --------------------------------------- panic once: recover degraded
        35..=49 => {
            report.injected_panics += 1;
            let stage = ALLOWED_PANIC_STAGES[rng.gen_range(0..ALLOWED_PANIC_STAGES.len())];
            let fault =
                FaultSpec { panic_stage: Some(stage), panic_times: 1, ..Default::default() };
            let frame = translate_frame(
                rid,
                &db_name,
                &sample.question,
                None,
                Some(&sample.values),
                Some(&fault),
            );
            let resp = fx
                .client()
                .roundtrip(&frame)
                .map_err(|e| format!("panic-case roundtrip failed: {e}"))?;
            match resp {
                Response::Translated { body, .. } => {
                    if body.retries == 0 || !body.degraded {
                        return Err(format!(
                            "panic case answered without degraded retry (retries {}, degraded {})",
                            body.retries, body.degraded
                        ));
                    }
                    // The digest must cover the killed attempt too.
                    check_trace(body.trace.as_ref(), 2, "panic recovered")?;
                    report.traced += 1;
                    report.recovered += 1;
                    Ok(format!("panic at {}: recovered degraded", stage.label()))
                }
                Response::Error { error, trace, .. }
                    if error.kind == ErrorKind::TranslateFailed =>
                {
                    check_trace(trace.as_ref(), 2, "panic untranslatable")?;
                    report.traced += 1;
                    report.recovered += 1;
                    Ok(format!("panic at {}: recovered (untranslatable)", stage.label()))
                }
                other => Err(format!("panic case not recovered: {other:?}")),
            }
        }
        // ------------------------------------------------- poison: quarantine
        50..=59 => {
            report.injected_panics += 1;
            let stage = ALLOWED_PANIC_STAGES[rng.gen_range(0..ALLOWED_PANIC_STAGES.len())];
            let fault =
                FaultSpec { panic_stage: Some(stage), panic_times: 99, ..Default::default() };
            let frame = translate_frame(
                rid,
                &db_name,
                &sample.question,
                None,
                Some(&sample.values),
                Some(&fault),
            );
            let resp = fx
                .client()
                .roundtrip(&frame)
                .map_err(|e| format!("poison roundtrip failed: {e}"))?;
            match resp {
                Response::Error { error, trace, .. } if error.kind == ErrorKind::Quarantined => {
                    let trace_id = check_trace(trace.as_ref(), 2, "quarantined")?;
                    report.traced += 1;
                    // The full span tree (with fault attribution) must be
                    // recoverable from the flight recorder over the wire.
                    check_flight_trace(
                        &mut fx.client(),
                        rid + 1,
                        trace_id,
                        "quarantined",
                        2,
                    )?;
                    report.quarantined += 1;
                    Ok(format!("poison at {}: quarantined, trace recovered", stage.label()))
                }
                other => Err(format!("poison case not quarantined: {other:?}")),
            }
        }
        // --------------------------------------------- stalled stage: deadline
        60..=69 => {
            let stage = ALWAYS_STAGES[rng.gen_range(0..ALWAYS_STAGES.len())];
            let deadline = rng.gen_range(5..15u64);
            let fault = FaultSpec {
                delay_stage: Some(stage),
                delay_ms: deadline + 40,
                ..Default::default()
            };
            let frame = translate_frame(
                rid,
                &db_name,
                &sample.question,
                Some(deadline),
                Some(&sample.values),
                Some(&fault),
            );
            let resp = fx
                .client()
                .roundtrip(&frame)
                .map_err(|e| format!("deadline roundtrip failed: {e}"))?;
            match resp {
                Response::Error { error, trace, .. }
                    if error.kind == ErrorKind::DeadlineExceeded =>
                {
                    // No stage requirement: the deadline may (rarely) expire
                    // while still queued, before any gate is crossed.
                    let t = trace
                        .as_ref()
                        .ok_or("deadline rejection carries no trace digest")?;
                    if t.attempts == 0 {
                        return Err("deadline trace has no attempt records".into());
                    }
                    report.traced += 1;
                    report.deadline_hits += 1;
                    Ok(format!("stall at {}: deadline enforced", stage.label()))
                }
                other => Err(format!("stalled request not deadline-rejected: {other:?}")),
            }
        }
        // --------------------------------------------------- overload burst
        70..=79 => {
            report.bursts += 1;
            // Park both workers on slow requests, then throw more requests
            // than the queue holds: sheds are typed, everyone is answered.
            let parked: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let frame = translate_frame(
                        rid + w as i64,
                        &db_name,
                        &sample.question,
                        None,
                        Some(&sample.values),
                        Some(&FaultSpec {
                            delay_stage: Some(Stage::Preprocess),
                            delay_ms: 150,
                            ..Default::default()
                        }),
                    );
                    let mut client = fx.client();
                    let h = std::thread::spawn(move || client.roundtrip(&frame));
                    // Stagger the parks well past the batch window so each
                    // worker's assembly window closes on a singleton and it
                    // stalls in the injected delay — were both parks
                    // submitted together, one worker would co-batch them
                    // and the other would keep draining the queue.
                    std::thread::sleep(Duration::from_millis(25));
                    h
                })
                .collect();
            std::thread::sleep(Duration::from_millis(15)); // workers pick them up
            let burst = QUEUE_CAPACITY + 4;
            let others: Vec<_> = (0..burst)
                .map(|b| {
                    let frame = translate_frame(
                        rid + 100 + b as i64,
                        &db_name,
                        &sample.question,
                        None,
                        Some(&sample.values),
                        None,
                    );
                    let mut client = fx.client();
                    std::thread::spawn(move || client.roundtrip(&frame))
                })
                .collect();
            let mut shed_here = 0u64;
            for h in parked.into_iter().chain(others) {
                let resp = h
                    .join()
                    .map_err(|_| "burst client thread panicked".to_string())?
                    .map_err(|e| format!("burst roundtrip failed (possible stall): {e}"))?;
                match resp {
                    Response::Translated { body, .. } => {
                        check_trace(body.trace.as_ref(), 1, "burst translated")?;
                        report.traced += 1;
                    }
                    Response::Error { error, trace, .. } => match error.kind {
                        ErrorKind::Overload => {
                            // Shed before admission: there is nothing to trace.
                            if trace.is_some() {
                                return Err("shed response carries a trace digest".into());
                            }
                            shed_here += 1;
                        }
                        ErrorKind::TranslateFailed => {
                            check_trace(trace.as_ref(), 1, "burst translate_failed")?;
                            report.traced += 1;
                        }
                        ErrorKind::DeadlineExceeded => {
                            if trace.is_none() {
                                return Err("burst deadline rejection has no trace".into());
                            }
                            report.traced += 1;
                        }
                        other => {
                            return Err(format!("burst got unexpected rejection: {other:?}"))
                        }
                    },
                    other => return Err(format!("burst got unexpected frame: {other:?}")),
                }
            }
            if shed_here == 0 {
                return Err("burst overflowed the queue but nothing was shed".into());
            }
            report.shed += shed_here;
            Ok(format!("burst: {shed_here}/{burst} shed, all answered"))
        }
        // -------------------------------- batched-concurrent: co-batched identity
        80..=89 => {
            report.batched += 1;
            // Two or three clean requests fired simultaneously so the batch
            // window co-batches their decodes; each must be bit-identical to
            // its solo reference. Members may repeat a question — identical
            // requests sharing a step batch is a valid (and likely) shape.
            let k = rng.gen_range(2..=3usize);
            let mut members = Vec::with_capacity(k);
            for m in 0..k {
                let idx = rng.gen_range(0..n_all);
                let s = if idx < n_train {
                    &fx.corpus.train[idx]
                } else {
                    &fx.corpus.dev[idx - n_train]
                };
                let mdb = fx.corpus.db(s);
                let expect = fx
                    .reference
                    .try_translate(mdb, &s.question, Some(&s.values))
                    .map_err(|e| format!("reference failed on batch member {m}: {e}"))?;
                members.push((mdb.schema().db_id.clone(), s, expect));
            }
            // A seeded 40% of cases add a member that panics mid-batch at a
            // seeded stage: its abort must not leak into the members above.
            let panic_stage = (rng.gen_range(0..10u32) < 4)
                .then(|| ALLOWED_PANIC_STAGES[rng.gen_range(0..ALLOWED_PANIC_STAGES.len())]);

            let fault_handle = panic_stage.map(|stage| {
                report.injected_panics += 1;
                let frame = translate_frame(
                    rid + 50,
                    &db_name,
                    &sample.question,
                    None,
                    Some(&sample.values),
                    Some(&FaultSpec {
                        panic_stage: Some(stage),
                        panic_times: 1,
                        ..Default::default()
                    }),
                );
                let mut client = fx.client();
                std::thread::spawn(move || client.roundtrip(&frame))
            });
            let handles: Vec<_> = members
                .iter()
                .enumerate()
                .map(|(m, (db_id, s, _))| {
                    let frame = translate_frame(
                        rid + m as i64,
                        db_id,
                        &s.question,
                        None,
                        Some(&s.values),
                        None,
                    );
                    let mut client = fx.client();
                    std::thread::spawn(move || client.roundtrip(&frame))
                })
                .collect();

            // Co-batched members: bit-identical, untouched by the co-member
            // panic — no retries, not degraded, answered exactly once.
            for (m, (h, (_, _, expect))) in handles.into_iter().zip(&members).enumerate() {
                let resp = h
                    .join()
                    .map_err(|_| "batched client thread panicked".to_string())?
                    .map_err(|e| format!("batched member {m} roundtrip failed: {e}"))?;
                match (expect.sql.as_ref(), resp) {
                    (Some(_), Response::Translated { body, .. }) => {
                        if body.degraded || body.retries != 0 {
                            return Err(format!(
                                "co-batched member {m} caught a co-member's fault \
                                 (retries {}, degraded {})",
                                body.retries, body.degraded
                            ));
                        }
                        check_trace(body.trace.as_ref(), 1, "batched member")?;
                        report.traced += 1;
                        check_identical(expect, &body, &format!("batched member {m}"))?;
                        report.batched_identical += 1;
                    }
                    (None, Response::Error { error, trace, .. })
                        if error.kind == ErrorKind::TranslateFailed =>
                    {
                        check_trace(trace.as_ref(), 1, "batched member translate_failed")?;
                        report.traced += 1;
                        report.batched_identical += 1;
                    }
                    (gold, got) => {
                        return Err(format!(
                            "batched member {m} outcome mismatch: reference sql {:?}, \
                             served {:?}",
                            gold.map(|s| s.to_string()),
                            got
                        ))
                    }
                }
            }

            // The faulty member recovers on the degraded path — and its
            // final decode must have run alone, never in a shared batch.
            if let Some(h) = fault_handle {
                let resp = h
                    .join()
                    .map_err(|_| "mid-batch panic client thread panicked".to_string())?
                    .map_err(|e| format!("mid-batch panic roundtrip failed: {e}"))?;
                let trace = match resp {
                    Response::Translated { body, .. } => {
                        if body.retries == 0 || !body.degraded {
                            return Err(format!(
                                "mid-batch panic answered without degraded retry \
                                 (retries {}, degraded {})",
                                body.retries, body.degraded
                            ));
                        }
                        body.trace
                    }
                    Response::Error { error, trace, .. }
                        if error.kind == ErrorKind::TranslateFailed =>
                    {
                        trace
                    }
                    other => {
                        return Err(format!("mid-batch panic not recovered: {other:?}"))
                    }
                };
                check_trace(trace.as_ref(), 2, "mid-batch panic")?;
                report.traced += 1;
                let batch_size = trace.map(|t| t.batch_size).unwrap_or(0);
                if batch_size != 1 {
                    return Err(format!(
                        "degraded retry decoded in a shared batch of {batch_size}"
                    ));
                }
                report.recovered += 1;
            }
            Ok(match panic_stage {
                Some(stage) => format!(
                    "batched: {k} co-batched identical, mid-batch panic at {} isolated",
                    stage.label()
                ),
                None => format!("batched: {k} co-batched identical"),
            })
        }
        // ----------------------------------------------- malformed protocol
        _ => {
            report.malformed += 1;
            let garbage = MALFORMED_FRAMES[rng.gen_range(0..MALFORMED_FRAMES.len())];
            let mut client = fx.client();
            let resp = client
                .roundtrip_raw(garbage)
                .map_err(|e| format!("malformed-frame roundtrip failed: {e}"))?;
            match resp {
                Response::Error { error, .. } if error.kind == ErrorKind::BadRequest => {}
                other => return Err(format!("garbage frame not rejected: {other:?}")),
            }
            // The same connection must still serve real traffic.
            match client
                .roundtrip(&verb_frame(rid, "ping"))
                .map_err(|e| format!("post-garbage ping failed: {e}"))?
            {
                Response::Pong { .. } => Ok("malformed frame rejected, connection intact".into()),
                other => Err(format!("connection wedged after garbage: {other:?}")),
            }
        }
    }
}

/// Stages panics may target. `Execute` is excluded for the same reason as
/// in [`ALWAYS_STAGES`]; a panic there is still covered by the engine's
/// unit tests.
const ALLOWED_PANIC_STAGES: [Stage; 4] = ALWAYS_STAGES;

/// Malformed wire frames the protocol must survive.
const MALFORMED_FRAMES: [&str; 8] = [
    "not json at all",
    "{\"unterminated\": \"",
    "[]",
    "{}",
    "{\"id\":\"string\",\"verb\":\"ping\"}",
    "{\"id\":9,\"verb\":\"warp_drive\"}",
    "{\"id\":9,\"verb\":\"translate\",\"db\":7,\"question\":\"q\"}",
    "{\"id\":9,\"verb\":\"translate\",\"db\":\"d\",\"question\":\"q\",\"fault\":{\"panic_stage\":\"nope\",\"panic_times\":1}}",
];

/// Runs the full serve-mode fuzz: fixture up, `cfg.cases` seeded cases,
/// pool-invariant epilogue, fixture down.
pub fn run_serve_fuzz(cfg: &ServeFuzzConfig) -> ServeFuzzReport {
    let _span = valuenet_obs::span("serve_fuzz");
    let fx = ServeFixture::start();
    let mut report = ServeFuzzReport { cases: cfg.cases, ..Default::default() };
    for i in 0..cfg.cases {
        let seed = case_seed(cfg.seed, i as u64);
        let _case = valuenet_obs::span("serve_fuzz.case");
        if let Err(desc) = run_serve_case(&fx, &mut report, seed) {
            report.failures.push((seed, desc));
        }
    }
    if report.cases > 0 && report.traced == 0 {
        report.failures.push((0, "no response carried a verified trace digest".into()));
    }
    fx.finish(&mut report);
    report
}
