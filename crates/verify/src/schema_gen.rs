//! Random schema + data generator.
//!
//! Samples a small relational schema whose foreign keys form a tree (every
//! table except the first references an earlier one), so any subset of
//! tables is connected and SemQL lowering can always build a join tree.
//! Tables are populated with rows that deliberately include the awkward
//! cases: NULLs in payload columns, floats alongside integers in `Number`
//! columns, dangling foreign keys, duplicated values and empty tables.

use rand::rngs::SmallRng;
use rand::Rng;
use valuenet_schema::{ColumnType, SchemaBuilder, TableId};
use valuenet_storage::{Database, Datum};

/// Text values drawn by the generator; small on purpose so that equality
/// filters hit and set operations overlap. The quote in `o'hara` exercises
/// literal escaping in the printer/parser round trip.
pub const TEXT_POOL: &[&str] =
    &["red", "green", "blue", "alpha", "beta", "new york", "o'hara"];

/// Date-like values for `Time` columns (compared as text).
const TIME_POOL: &[&str] = &["2019-01-01", "2020-06-15", "2021-12-31"];

/// Maximum number of tables in a generated schema.
pub const MAX_TABLES: usize = 4;
/// Maximum number of rows per generated table.
pub const MAX_ROWS: usize = 12;

/// Samples a populated database. Deterministic in the RNG state.
pub fn gen_database(rng: &mut SmallRng) -> Database {
    let n_tables = rng.gen_range(1..=MAX_TABLES);

    // Describe the schema first: (table name, columns, parent table index).
    struct TableSpec {
        name: String,
        cols: Vec<(String, ColumnType)>,
        parent: Option<usize>,
    }
    let mut specs: Vec<TableSpec> = Vec::with_capacity(n_tables);
    for ti in 0..n_tables {
        let mut cols: Vec<(String, ColumnType)> = vec![(format!("t{ti}_id"), ColumnType::Number)];
        let parent = if ti > 0 { Some(rng.gen_range(0..ti)) } else { None };
        if let Some(p) = parent {
            cols.push((format!("t{p}_ref"), ColumnType::Number));
        }
        let n_payload = rng.gen_range(1..=3);
        for ci in 0..n_payload {
            let ty = match rng.gen_range(0..10) {
                0..=4 => ColumnType::Number,
                5..=8 => ColumnType::Text,
                _ => ColumnType::Time,
            };
            cols.push((format!("t{ti}_c{ci}"), ty));
        }
        specs.push(TableSpec { name: format!("t{ti}"), cols, parent });
    }

    let mut builder = SchemaBuilder::new("fuzz");
    for spec in &specs {
        let cols: Vec<(&str, ColumnType)> =
            spec.cols.iter().map(|(n, ty)| (n.as_str(), *ty)).collect();
        builder = builder.table(&spec.name, &cols);
        builder = builder.primary_key(&spec.name, &spec.cols[0].0);
        if let Some(p) = spec.parent {
            builder = builder.foreign_key(
                &spec.name,
                &format!("t{p}_ref"),
                &specs[p].name,
                &format!("t{p}_id"),
            );
        }
    }
    let schema = builder.build();

    // Populate. Row counts are sampled before any row data so that the
    // number of RNG draws per table is easy to reason about; a ~1 in 10
    // table is left empty to cover empty-input aggregate semantics.
    let mut row_counts = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let n = if rng.gen_range(0..10) == 0 { 0 } else { rng.gen_range(1..=MAX_ROWS) };
        row_counts.push(n);
    }

    let mut db = Database::new(schema);
    for (ti, spec) in specs.iter().enumerate() {
        let table = db.schema().table_by_name(&spec.name).expect("generated table exists");
        let parent_rows = spec.parent.map(|p| row_counts[p]).unwrap_or(0);
        for ri in 0..row_counts[ti] {
            let mut row: Vec<Datum> = Vec::with_capacity(spec.cols.len());
            for (ci, (_, ty)) in spec.cols.iter().enumerate() {
                if ci == 0 {
                    // Primary key: dense and unique.
                    row.push(Datum::Int(ri as i64));
                } else if ci == 1 && spec.parent.is_some() {
                    // Foreign key: usually a live parent id, sometimes
                    // dangling, sometimes NULL.
                    row.push(match rng.gen_range(0..10) {
                        0 => Datum::Null,
                        1 => Datum::Int(parent_rows as i64 + 7),
                        _ if parent_rows > 0 => {
                            Datum::Int(rng.gen_range(0..parent_rows) as i64)
                        }
                        _ => Datum::Int(0),
                    });
                } else {
                    row.push(gen_datum(rng, *ty));
                }
            }
            db.insert(table, row);
        }
    }
    db.rebuild_index();
    db
}

/// Samples one payload cell of the given column type.
fn gen_datum(rng: &mut SmallRng, ty: ColumnType) -> Datum {
    if rng.gen_range(0..10) == 0 {
        return Datum::Null;
    }
    match ty {
        ColumnType::Number => {
            if rng.gen_range(0..5) == 0 {
                Datum::Float(rng.gen_range(0..20) as f64 / 2.0)
            } else {
                Datum::Int(rng.gen_range(0..10))
            }
        }
        ColumnType::Time => Datum::Text(TIME_POOL[rng.gen_range(0..TIME_POOL.len())].to_string()),
        _ => Datum::Text(TEXT_POOL[rng.gen_range(0..TEXT_POOL.len())].to_string()),
    }
}

/// One-line-per-table summary used in failure reports.
pub fn describe_database(db: &Database) -> String {
    let schema = db.schema();
    let mut out = String::new();
    for (ti, table) in schema.tables.iter().enumerate() {
        let cols: Vec<String> = table
            .columns
            .iter()
            .map(|&c| format!("{} {:?}", schema.column(c).name, schema.column(c).ty))
            .collect();
        out.push_str(&format!(
            "  {} ({}) [{} rows]\n",
            table.name,
            cols.join(", "),
            db.rows(TableId(ti)).len()
        ));
        for row in db.rows(TableId(ti)) {
            let cells: Vec<String> = row.iter().map(|d| d.to_string()).collect();
            out.push_str(&format!("    ({})\n", cells.join(", ")));
        }
    }
    out
}
