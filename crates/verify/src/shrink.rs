//! Greedy shrinking of failing fuzz cases.
//!
//! A raw divergence usually involves a four-table join, a filter tree and a
//! dozen rows per table. The shrinker repeatedly tries structural
//! simplifications — collapse a compound to one side, drop the filter,
//! replace an `And`/`Or` by either child, drop ordering, remove projections,
//! remove rows — keeping any mutation under which the case *still fails*,
//! until no candidate helps (or an evaluation budget runs out). The result
//! is typically a one-table, one-row reproducer.

use valuenet_schema::DbSchema;
use valuenet_semql::{Filter, QueryR, ResolvedValue, SemQl, ValueRef};
use valuenet_storage::{Database, Datum};

/// A self-contained fuzz case: schema + rows (the database is rebuilt on
/// demand, since row sets are what the shrinker mutates) and the SemQL tree
/// with its resolved values.
#[derive(Debug, Clone)]
pub struct Case {
    /// The generated schema.
    pub schema: DbSchema,
    /// Rows per table, in schema order.
    pub rows: Vec<Vec<Vec<Datum>>>,
    /// The SemQL tree under test.
    pub tree: SemQl,
    /// Values referenced by the tree's `V` pointers.
    pub values: Vec<ResolvedValue>,
}

impl Case {
    /// Captures a database into a mutable case.
    pub fn from_database(db: &Database, tree: SemQl, values: Vec<ResolvedValue>) -> Self {
        let schema = db.schema().clone();
        let rows = (0..schema.tables.len())
            .map(|ti| db.rows(valuenet_schema::TableId(ti)).to_vec())
            .collect();
        Case { schema, rows, tree, values }
    }

    /// Materialises the database (with its index rebuilt).
    pub fn database(&self) -> Database {
        Database::with_rows(self.schema.clone(), self.rows.clone())
    }
}

/// Evaluation budget: upper bound on `still_fails` calls per shrink.
const MAX_EVALS: usize = 200;

/// Greedily minimises `case` under the predicate `still_fails`.
///
/// The predicate must return `true` for the input case; every accepted
/// mutation preserves it. Deterministic: candidates are tried in a fixed
/// order, so the same failing case always shrinks to the same reproducer.
pub fn shrink_case<F>(case: Case, mut still_fails: F) -> Case
where
    F: FnMut(&Case) -> bool,
{
    let mut current = case;
    let mut evals = 0;
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if evals >= MAX_EVALS {
                return current;
            }
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// All single-step simplifications of a case, structural tree mutations
/// first, then row reductions.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();

    // Collapse a compound to either operand.
    if let SemQl::Union(a, b) | SemQl::Intersect(a, b) | SemQl::Except(a, b) = &case.tree {
        out.push(with_tree(case, SemQl::Single(a.clone())));
        out.push(with_tree(case, SemQl::Single(b.clone())));
    }

    for qi in 0..query_count(&case.tree) {
        let q = query_ref(&case.tree, qi);
        if let Some(filter) = &q.filter {
            // Drop the whole filter, then try replacing each And/Or node by
            // either of its children.
            out.push(mutate_query(case, qi, |q| q.filter = None));
            for variant in filter_variants(filter) {
                out.push(mutate_query(case, qi, move |q| q.filter = Some(variant)));
            }
        }
        if q.order.is_some() {
            out.push(mutate_query(case, qi, |q| q.order = None));
        }
        if q.superlative.is_some() {
            out.push(mutate_query(case, qi, |q| q.superlative = None));
        }
        if q.select.distinct {
            out.push(mutate_query(case, qi, |q| q.select.distinct = false));
        }
        // Removing projections is only arity-safe outside compounds.
        if matches!(case.tree, SemQl::Single(_)) && q.select.aggs.len() > 1 {
            for ai in 0..q.select.aggs.len() {
                out.push(mutate_query(case, qi, move |q| {
                    q.select.aggs.remove(ai);
                }));
            }
        }
    }

    // Row reductions: empty a table, halve it, then peel single rows.
    for ti in 0..case.rows.len() {
        let n = case.rows[ti].len();
        if n == 0 {
            continue;
        }
        out.push(with_rows(case, ti, Vec::new()));
        if n >= 2 {
            out.push(with_rows(case, ti, case.rows[ti][..n / 2].to_vec()));
            out.push(with_rows(case, ti, case.rows[ti][n / 2..].to_vec()));
        }
        if n <= 6 {
            for ri in 0..n {
                let mut rows = case.rows[ti].clone();
                rows.remove(ri);
                out.push(with_rows(case, ti, rows));
            }
        }
    }

    out
}

fn with_tree(case: &Case, mut tree: SemQl) -> Case {
    let values = renumber_values(&mut tree, &case.values);
    Case { schema: case.schema.clone(), rows: case.rows.clone(), tree, values }
}

fn with_rows(case: &Case, table: usize, rows: Vec<Vec<Datum>>) -> Case {
    let mut next = case.clone();
    next.rows[table] = rows;
    next
}

fn mutate_query(case: &Case, qi: usize, f: impl FnOnce(&mut QueryR)) -> Case {
    let mut tree = case.tree.clone();
    f(query_mut(&mut tree, qi));
    with_tree(case, tree)
}

fn query_count(tree: &SemQl) -> usize {
    match tree {
        SemQl::Single(_) => 1,
        _ => 2,
    }
}

fn query_ref(tree: &SemQl, i: usize) -> &QueryR {
    match tree {
        SemQl::Single(q) => q,
        SemQl::Union(a, b) | SemQl::Intersect(a, b) | SemQl::Except(a, b) => {
            if i == 0 {
                a
            } else {
                b
            }
        }
    }
}

fn query_mut(tree: &mut SemQl, i: usize) -> &mut QueryR {
    match tree {
        SemQl::Single(q) => q,
        SemQl::Union(a, b) | SemQl::Intersect(a, b) | SemQl::Except(a, b) => {
            if i == 0 {
                a
            } else {
                b
            }
        }
    }
}

/// One-step simplifications of a filter tree: each `And`/`Or` node replaced
/// by either child, recursively.
fn filter_variants(f: &Filter) -> Vec<Filter> {
    match f {
        Filter::And(a, b) => {
            let mut out = vec![(**a).clone(), (**b).clone()];
            out.extend(filter_variants(a).into_iter().map(|v| Filter::And(Box::new(v), b.clone())));
            out.extend(filter_variants(b).into_iter().map(|v| Filter::And(a.clone(), Box::new(v))));
            out
        }
        Filter::Or(a, b) => {
            let mut out = vec![(**a).clone(), (**b).clone()];
            out.extend(filter_variants(a).into_iter().map(|v| Filter::Or(Box::new(v), b.clone())));
            out.extend(filter_variants(b).into_iter().map(|v| Filter::Or(a.clone(), Box::new(v))));
            out
        }
        _ => Vec::new(),
    }
}

/// Rewrites every [`ValueRef`] in the (possibly pruned) tree to a compact
/// 0..n numbering and returns the matching value list. Traversal order
/// mirrors `SemQl::value_refs` so the mapping is total and deterministic.
fn renumber_values(tree: &mut SemQl, old: &[ResolvedValue]) -> Vec<ResolvedValue> {
    let mut values = Vec::new();
    let mut remap = |r: &mut ValueRef| {
        let v = old[r.0].clone();
        r.0 = values.len();
        values.push(v);
    };
    match tree {
        SemQl::Single(q) => walk_query(q, &mut remap),
        SemQl::Union(a, b) | SemQl::Intersect(a, b) | SemQl::Except(a, b) => {
            walk_query(a, &mut remap);
            walk_query(b, &mut remap);
        }
    }
    values
}

fn walk_query(q: &mut QueryR, f: &mut impl FnMut(&mut ValueRef)) {
    if let Some(s) = &mut q.superlative {
        f(&mut s.limit);
    }
    if let Some(fl) = &mut q.filter {
        walk_filter(fl, f);
    }
}

fn walk_filter(fl: &mut Filter, f: &mut impl FnMut(&mut ValueRef)) {
    match fl {
        Filter::And(a, b) | Filter::Or(a, b) => {
            walk_filter(a, f);
            walk_filter(b, f);
        }
        Filter::Cmp { value, .. } => f(value),
        Filter::Between { low, high, .. } => {
            f(low);
            f(high);
        }
        Filter::Like { value, .. } => f(value),
        Filter::CmpNested { query, .. } | Filter::In { query, .. } => walk_query(query, f),
    }
}
