//! Grammar-directed SemQL 2.0 tree generator.
//!
//! Samples trees covering every production of the grammar (paper Fig. 2):
//! compound `Z` roots, 1–5 projections with and without aggregates,
//! `Order`/`Superlative`, and the full `Filter` family including nested
//! queries (`op A R`, `in A R`). Filter values are preferentially sampled
//! from the database content so predicates actually hit rows; a fraction is
//! drawn uniformly so misses and empty results stay covered.

use rand::rngs::SmallRng;
use rand::Rng;
use valuenet_schema::{ColumnId, ColumnType, DbSchema, TableId};
use valuenet_semql::{
    Agg, CmpOp, Filter, Order, QueryR, ResolvedValue, Select, SemQl, Superlative, ValueRef,
};
use valuenet_sql::AggFunc;
use valuenet_storage::{Database, Datum};

use crate::schema_gen::TEXT_POOL;

/// Samples a grammar-valid tree plus the values its `V` pointers resolve to.
pub fn gen_semql(rng: &mut SmallRng, db: &Database) -> (SemQl, Vec<ResolvedValue>) {
    let mut gen = Gen { rng, db, values: Vec::new() };
    let tree = if gen.rng.gen_range(0..100) < 12 {
        // Compound roots need equal arity on both sides; order/superlative
        // inside compound operands is excluded, matching the system's own
        // query distribution (see the sql crate's dialect note).
        let arity = gen.rng.gen_range(1..=2);
        let a = gen.gen_query(1, Some(arity));
        let b = gen.gen_query(1, Some(arity));
        match gen.rng.gen_range(0..3) {
            0 => SemQl::Union(Box::new(a), Box::new(b)),
            1 => SemQl::Intersect(Box::new(a), Box::new(b)),
            _ => SemQl::Except(Box::new(a), Box::new(b)),
        }
    } else {
        SemQl::Single(Box::new(gen.gen_query(0, None)))
    };
    (tree, gen.values)
}

struct Gen<'a> {
    rng: &'a mut SmallRng,
    db: &'a Database,
    values: Vec<ResolvedValue>,
}

impl Gen<'_> {
    fn schema(&self) -> &DbSchema {
        self.db.schema()
    }

    /// Samples an `R`. `depth > 0` marks nested or compound-operand
    /// queries, which stay flat: no order, no superlative, no further
    /// nesting. `fixed_arity` pins the projection count (compound roots).
    fn gen_query(&mut self, depth: usize, fixed_arity: Option<usize>) -> QueryR {
        let n_aggs = fixed_arity.unwrap_or_else(|| match self.rng.gen_range(0..10) {
            0..=5 => 1,
            6..=8 => 2,
            _ => 3,
        });
        let mut aggs = Vec::with_capacity(n_aggs);
        for _ in 0..n_aggs {
            aggs.push(self.gen_agg(true));
        }
        let mut select = Select::new(aggs);
        select.distinct = self.rng.gen_range(0..10) < 3;

        let filter = {
            let p = if depth == 0 { 65 } else { 40 };
            if self.rng.gen_range(0..100) < p {
                Some(self.gen_filter(depth, 0))
            } else {
                None
            }
        };

        let (order, superlative) = if depth > 0 {
            (None, None)
        } else {
            match self.rng.gen_range(0..100) {
                0..=19 => (
                    Some(Order { desc: self.rng.gen(), agg: self.gen_agg(false) }),
                    None,
                ),
                20..=34 => {
                    let limit_text = self.rng.gen_range(1..=4).to_string();
                    let limit = self.new_value(limit_text);
                    (
                        None,
                        Some(Superlative {
                            most: self.rng.gen(),
                            limit,
                            agg: self.gen_agg(false),
                        }),
                    )
                }
                _ => (None, None),
            }
        };

        QueryR { select, order, superlative, filter }
    }

    /// Samples an `A`: a plain column, `count(*)`, or an aggregated numeric
    /// column. Sort keys (`allow_star = false`) never use `*`.
    fn gen_agg(&mut self, allow_star: bool) -> Agg {
        let table = TableId(self.rng.gen_range(0..self.schema().tables.len()));
        match self.rng.gen_range(0..10) {
            0..=5 => Agg::plain(self.any_column(table), table),
            6 if allow_star => Agg::count_star(table),
            _ => match self.numeric_column(table) {
                Some(col) => {
                    let funcs =
                        [AggFunc::Max, AggFunc::Min, AggFunc::Sum, AggFunc::Avg, AggFunc::Count];
                    Agg::with(funcs[self.rng.gen_range(0..funcs.len())], col, table)
                }
                None => Agg::plain(self.any_column(table), table),
            },
        }
    }

    /// Samples a filter tree of bounded depth.
    fn gen_filter(&mut self, query_depth: usize, tree_depth: usize) -> Filter {
        if tree_depth < 2 && self.rng.gen_range(0..100) < 30 {
            let a = self.gen_filter(query_depth, tree_depth + 1);
            let b = self.gen_filter(query_depth, tree_depth + 1);
            return if self.rng.gen() {
                Filter::And(Box::new(a), Box::new(b))
            } else {
                Filter::Or(Box::new(a), Box::new(b))
            };
        }
        let table = TableId(self.rng.gen_range(0..self.schema().tables.len()));
        // Nested-query leaves only at the outermost query level.
        let roll = if query_depth == 0 { self.rng.gen_range(0..100) } else { self.rng.gen_range(0..70) };
        match roll {
            // Aggregated comparison → lowers to HAVING.
            0..=9 => {
                let agg = if self.rng.gen_range(0..3) == 0 {
                    Agg::count_star(table)
                } else {
                    match self.numeric_column(table) {
                        Some(col) => {
                            let funcs = [AggFunc::Max, AggFunc::Min, AggFunc::Sum, AggFunc::Avg];
                            Agg::with(funcs[self.rng.gen_range(0..funcs.len())], col, table)
                        }
                        None => Agg::count_star(table),
                    }
                };
                let value_text = self.rng.gen_range(0..8).to_string();
                let value = self.new_value(value_text);
                Filter::Cmp { op: self.gen_cmp_op(), agg, value }
            }
            // Plain comparison against a sampled value.
            10..=44 => {
                let col = self.any_column(table);
                let op = if self.schema().column(col).ty.is_textual() {
                    if self.rng.gen() { CmpOp::Eq } else { CmpOp::Ne }
                } else {
                    self.gen_cmp_op()
                };
                let text = self.sample_value(table, col);
                let value = self.new_value(text);
                Filter::Cmp { op, agg: Agg::plain(col, table), value }
            }
            // BETWEEN over a numeric column.
            45..=54 => match self.numeric_column(table) {
                Some(col) => {
                    let lo = self.rng.gen_range(0..5);
                    let hi = lo + self.rng.gen_range(0..6);
                    let low = self.new_value(lo.to_string());
                    let high = self.new_value(hi.to_string());
                    Filter::Between { agg: Agg::plain(col, table), low, high }
                }
                None => self.gen_filter(query_depth, 2),
            },
            // LIKE over a text column (full values and fragments).
            55..=64 => match self.text_column(table) {
                Some(col) => {
                    let pool = TEXT_POOL[self.rng.gen_range(0..TEXT_POOL.len())];
                    let text = if self.rng.gen() {
                        pool.to_string()
                    } else {
                        pool.chars().take(2).collect()
                    };
                    let value = self.new_value(text);
                    Filter::Like {
                        agg: Agg::plain(col, table),
                        value,
                        negated: self.rng.gen_range(0..4) == 0,
                    }
                }
                None => self.gen_filter(query_depth, 2),
            },
            // `in A R` / `not_in A R`: membership in a nested single-column
            // projection.
            65..=79 => {
                let col = self.any_column(table);
                let inner_table = TableId(self.rng.gen_range(0..self.schema().tables.len()));
                let inner_col = self.any_column(inner_table);
                let query =
                    QueryR::select_only(Select::new(vec![Agg::plain(inner_col, inner_table)]));
                Filter::In {
                    agg: Agg::plain(col, table),
                    query: Box::new(query),
                    negated: self.rng.gen_range(0..3) == 0,
                }
            }
            // `op A R`: comparison against a nested scalar aggregate.
            _ => {
                let col = match self.numeric_column(table) {
                    Some(c) => c,
                    None => return self.gen_filter(query_depth, 2),
                };
                let inner_table = TableId(self.rng.gen_range(0..self.schema().tables.len()));
                let inner_col = match self.numeric_column(inner_table) {
                    Some(c) => c,
                    None => return self.gen_filter(query_depth, 2),
                };
                let funcs = [AggFunc::Max, AggFunc::Min, AggFunc::Sum, AggFunc::Avg];
                let inner = QueryR::select_only(Select::new(vec![Agg::with(
                    funcs[self.rng.gen_range(0..funcs.len())],
                    inner_col,
                    inner_table,
                )]));
                Filter::CmpNested {
                    op: self.gen_cmp_op(),
                    agg: Agg::plain(col, table),
                    query: Box::new(inner),
                }
            }
        }
    }

    fn gen_cmp_op(&mut self) -> CmpOp {
        let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Gt, CmpOp::Le, CmpOp::Ge];
        ops[self.rng.gen_range(0..ops.len())]
    }

    /// Registers a resolved value and returns its pointer.
    fn new_value(&mut self, text: String) -> ValueRef {
        let r = ValueRef(self.values.len());
        self.values.push(ResolvedValue::new(text));
        r
    }

    /// A random real column of the table.
    fn any_column(&mut self, table: TableId) -> ColumnId {
        let n = self.schema().table(table).columns.len();
        let i = self.rng.gen_range(0..n);
        self.schema().table(table).columns[i]
    }

    fn typed_column(&mut self, table: TableId, pred: impl Fn(ColumnType) -> bool) -> Option<ColumnId> {
        let cols: Vec<ColumnId> = self
            .schema()
            .table(table)
            .columns
            .iter()
            .copied()
            .filter(|&c| pred(self.schema().column(c).ty))
            .collect();
        if cols.is_empty() {
            None
        } else {
            Some(cols[self.rng.gen_range(0..cols.len())])
        }
    }

    fn numeric_column(&mut self, table: TableId) -> Option<ColumnId> {
        self.typed_column(table, |ty| ty == ColumnType::Number)
    }

    fn text_column(&mut self, table: TableId) -> Option<ColumnId> {
        self.typed_column(table, |ty| ty.is_textual())
    }

    /// A comparison value for `column`: four times out of five an actual
    /// cell value (so predicates hit), otherwise a fresh uniform draw.
    fn sample_value(&mut self, table: TableId, column: ColumnId) -> String {
        let rows = self.db.rows(table);
        let pos = self
            .schema()
            .table(table)
            .columns
            .iter()
            .position(|&c| c == column)
            .expect("column belongs to table");
        if !rows.is_empty() && self.rng.gen_range(0..5) != 0 {
            let row = &rows[self.rng.gen_range(0..rows.len())];
            match &row[pos] {
                Datum::Int(i) => return i.to_string(),
                Datum::Float(f) => return f.to_string(),
                Datum::Text(s) => return s.clone(),
                Datum::Null => {}
            }
        }
        if self.schema().column(column).ty.is_textual() {
            TEXT_POOL[self.rng.gen_range(0..TEXT_POOL.len())].to_string()
        } else {
            self.rng.gen_range(0..10).to_string()
        }
    }
}
