//! Naive reference SQL interpreter — the differential oracle.
//!
//! Implements the same SQL semantics as `valuenet-exec` with the simplest
//! possible evaluation strategy: joins are straight nested loops (no hash
//! fast path), subqueries are re-executed at every evaluation site (no
//! caching), and nothing consults an index. The two implementations share
//! no execution code, so a result mismatch on the same statement exposes a
//! bug in one of them.
//!
//! Semantics intentionally mirrored (see `DESIGN.md`, "Verification &
//! oracles"): NULL never equals anything (`!=` against NULL is *false*,
//! not true), comparisons against NULL are false, aggregates skip NULLs
//! with `SUM`/`AVG` of nothing being NULL, `count(*)` counts rows,
//! `Int`/`Float` compare numerically, LIKE is ASCII-case-insensitive, and
//! set operations deduplicate with `Int(2)` ≡ `Float(2.0)`.

use std::collections::HashSet;
use valuenet_exec::ResultSet;
use valuenet_schema::TableId;
use valuenet_sql::{
    AggFunc, BinOp, ColumnRef, CompoundOp, Expr, Literal, OrderItem, SelectCore, SelectStmt,
};
use valuenet_storage::{like_match, Database, Datum};

/// Reference-interpreter failure. The variants deliberately cover the same
/// conditions `valuenet_exec::ExecError` reports; the fuzz harness compares
/// only the Ok/Err outcome, never messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// FROM/JOIN names a table the schema does not have.
    UnknownTable(String),
    /// A column reference cannot be resolved.
    UnknownColumn(String),
    /// Compound operands produced different arities.
    ArityMismatch {
        /// Left arity.
        left: usize,
        /// Right arity.
        right: usize,
    },
    /// A subquery produced more than one column.
    SubqueryArity(usize),
    /// A column reference with no FROM clause.
    NoFrom,
    /// Any other malformed statement.
    Invalid(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::UnknownTable(t) => write!(f, "unknown table {t}"),
            OracleError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            OracleError::ArityMismatch { left, right } => {
                write!(f, "compound arity mismatch: {left} vs {right}")
            }
            OracleError::SubqueryArity(n) => write!(f, "subquery returned {n} columns"),
            OracleError::NoFrom => write!(f, "column reference without FROM"),
            OracleError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// Executes a statement with the naive strategy.
pub fn reference_execute(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, OracleError> {
    let mut left = execute_plain(db, stmt)?;
    if let Some((op, rhs)) = &stmt.compound {
        let right = reference_execute(db, rhs)?;
        if !left.rows.is_empty() && !right.rows.is_empty() {
            let (la, ra) = (left.rows[0].len(), right.rows[0].len());
            if la != ra {
                return Err(OracleError::ArityMismatch { left: la, right: ra });
            }
        }
        left = apply_compound(*op, left, right);
    }
    Ok(left)
}

fn apply_compound(op: CompoundOp, left: ResultSet, right: ResultSet) -> ResultSet {
    let headers = left.headers.clone();
    let rows = match op {
        CompoundOp::UnionAll => {
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        CompoundOp::Union => {
            let mut seen = HashSet::new();
            left.rows
                .into_iter()
                .chain(right.rows)
                .filter(|r| seen.insert(canonical_key(r)))
                .collect()
        }
        CompoundOp::Intersect => {
            let right_keys: HashSet<String> =
                right.rows.iter().map(|r| canonical_key(r)).collect();
            let mut seen = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| {
                    let k = canonical_key(r);
                    right_keys.contains(&k) && seen.insert(k)
                })
                .collect()
        }
        CompoundOp::Except => {
            let right_keys: HashSet<String> =
                right.rows.iter().map(|r| canonical_key(r)).collect();
            let mut seen = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| {
                    let k = canonical_key(r);
                    !right_keys.contains(&k) && seen.insert(k)
                })
                .collect()
        }
    };
    ResultSet { headers, rows, ordered: false }
}

fn execute_plain(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, OracleError> {
    let scope = Scope::build(db, &stmt.core)?;

    // FROM + JOIN: pure nested loops, attaching one table at a time and
    // filtering with the ON predicate on the combined row.
    let mut rows: Vec<Vec<Datum>> = if scope.entries.is_empty() {
        vec![Vec::new()]
    } else {
        db.rows(scope.entries[0].table).to_vec()
    };
    for (ji, join) in stmt.core.joins.iter().enumerate() {
        let entry = &scope.entries[ji + 1];
        let right_rows = db.rows(entry.table);
        // The executor inspects `ON a = b` column pairs up front (its
        // hash-join probe), so resolution errors surface even when no row
        // is ever joined; mirror that eagerness before the nested loop.
        if let Some(Expr::Binary { op: BinOp::Eq, lhs, rhs }) = &join.on {
            if let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) {
                scope.resolve(a)?;
                scope.resolve(b)?;
            }
        }
        let mut next = Vec::new();
        for left in &rows {
            for right in right_rows {
                let mut combined = left.clone();
                combined.extend_from_slice(right);
                let keep = match &join.on {
                    Some(on) => truthy(&scope.eval(on, &Ctx::Row(&combined))?),
                    None => true,
                };
                if keep {
                    next.push(combined);
                }
            }
        }
        rows = next;
    }

    // WHERE.
    let mut kept = Vec::with_capacity(rows.len());
    for row in rows {
        let keep = match &stmt.core.where_clause {
            Some(pred) => truthy(&scope.eval(pred, &Ctx::Row(&row))?),
            None => true,
        };
        if keep {
            kept.push(row);
        }
    }

    let has_agg = stmt.core.items.iter().any(|it| it.expr.contains_aggregate())
        || stmt.core.having.as_ref().is_some_and(Expr::contains_aggregate)
        || stmt.order_by.iter().any(|o| o.expr.contains_aggregate());
    let grouped = !stmt.core.group_by.is_empty() || has_agg;

    let mut headers = Vec::new();
    for it in &stmt.core.items {
        match &it.expr {
            Expr::Column(c) if c.is_star() => headers.extend(scope.star_headers(c)?),
            e => headers.push(it.alias.clone().unwrap_or_else(|| e.to_string())),
        }
    }

    let mut produced: Vec<(Vec<Datum>, Vec<Datum>)> = Vec::new();
    if grouped {
        // Group in first-encounter order (single implicit group when there
        // is no GROUP BY — even over zero input rows).
        let mut keys: Vec<String> = Vec::new();
        let mut groups: Vec<Vec<Vec<Datum>>> = Vec::new();
        if stmt.core.group_by.is_empty() {
            groups.push(kept);
        } else {
            for row in kept {
                let mut kv = Vec::with_capacity(stmt.core.group_by.len());
                for gexpr in &stmt.core.group_by {
                    kv.push(scope.eval(gexpr, &Ctx::Row(&row))?);
                }
                let k = canonical_key(&kv);
                match keys.iter().position(|x| *x == k) {
                    Some(i) => groups[i].push(row),
                    None => {
                        keys.push(k);
                        groups.push(vec![row]);
                    }
                }
            }
        }
        for rows in &groups {
            let ctx = Ctx::Group(rows);
            if let Some(h) = &stmt.core.having {
                if !truthy(&scope.eval(h, &ctx)?) {
                    continue;
                }
            }
            let out = scope.project(&stmt.core, &ctx)?;
            let key = scope.order_keys(&stmt.order_by, &ctx)?;
            produced.push((out, key));
        }
    } else {
        for row in &kept {
            let ctx = Ctx::Row(row);
            let out = scope.project(&stmt.core, &ctx)?;
            let key = scope.order_keys(&stmt.order_by, &ctx)?;
            produced.push((out, key));
        }
    }

    if !stmt.order_by.is_empty() {
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, o) in stmt.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if o.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let mut rows: Vec<Vec<Datum>> = produced.into_iter().map(|(r, _)| r).collect();
    if stmt.core.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(canonical_key(r)));
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit as usize);
    }
    Ok(ResultSet { headers, rows, ordered: stmt.is_ordered() })
}

/// Canonical dedup key: `Int` and `Float` of the same value coincide, as in
/// SQL value semantics (and the executor's DISTINCT / set operations).
fn canonical_key(row: &[Datum]) -> String {
    let mut key = String::with_capacity(row.len() * 8);
    for d in row {
        match d {
            Datum::Null => key.push_str("\u{1}N"),
            Datum::Int(i) => {
                key.push_str("\u{1}n");
                key.push_str(&format!("{:.9e}", *i as f64));
            }
            Datum::Float(f) => {
                key.push_str("\u{1}n");
                key.push_str(&format!("{f:.9e}"));
            }
            Datum::Text(s) => {
                key.push_str("\u{1}t");
                key.push_str(s);
            }
        }
    }
    key
}

fn truthy(d: &Datum) -> bool {
    match d {
        Datum::Null | Datum::Text(_) => false,
        Datum::Int(i) => *i != 0,
        Datum::Float(f) => *f != 0.0,
    }
}

fn bool_datum(b: bool) -> Datum {
    Datum::Int(i64::from(b))
}

/// One bound table: effective name, id, and flat column offset.
struct ScopeEntry {
    name: String,
    table: TableId,
    offset: usize,
    width: usize,
}

/// The tables in scope plus the database, doubling as the expression
/// evaluator (no caches of any kind).
struct Scope<'a> {
    db: &'a Database,
    entries: Vec<ScopeEntry>,
}

/// Row context: a single joined row, or a group of rows.
enum Ctx<'a> {
    Row(&'a [Datum]),
    Group(&'a [Vec<Datum>]),
}

impl<'a> Scope<'a> {
    fn build(db: &'a Database, core: &SelectCore) -> Result<Self, OracleError> {
        let mut entries = Vec::new();
        let mut offset = 0;
        let mut push = |name: String, table_name: &str| -> Result<(), OracleError> {
            let table = db
                .schema()
                .table_by_name(table_name)
                .ok_or_else(|| OracleError::UnknownTable(table_name.to_string()))?;
            let width = db.schema().table(table).columns.len();
            entries.push(ScopeEntry { name, table, offset, width });
            offset += width;
            Ok(())
        };
        if let Some(from) = &core.from {
            push(from.effective_name().to_string(), &from.name)?;
            for j in &core.joins {
                push(j.table.effective_name().to_string(), &j.table.name)?;
            }
        }
        Ok(Scope { db, entries })
    }

    fn resolve(&self, c: &ColumnRef) -> Result<usize, OracleError> {
        if self.entries.is_empty() {
            return Err(OracleError::NoFrom);
        }
        let schema = self.db.schema();
        match &c.table {
            Some(q) => {
                // Effective names (aliases) take precedence over physical
                // table names, mirroring the executor's resolution rule.
                let entry = self
                    .entries
                    .iter()
                    .find(|e| e.name.eq_ignore_ascii_case(q))
                    .or_else(|| {
                        self.entries
                            .iter()
                            .find(|e| schema.table(e.table).name.eq_ignore_ascii_case(q))
                    })
                    .ok_or_else(|| OracleError::UnknownTable(q.clone()))?;
                let col = schema
                    .column_by_name(entry.table, &c.column)
                    .ok_or_else(|| OracleError::UnknownColumn(format!("{q}.{}", c.column)))?;
                let pos = schema
                    .table(entry.table)
                    .columns
                    .iter()
                    .position(|&cc| cc == col)
                    .expect("column belongs to table");
                Ok(entry.offset + pos)
            }
            None => {
                for entry in &self.entries {
                    if let Some(col) = schema.column_by_name(entry.table, &c.column) {
                        let pos = schema
                            .table(entry.table)
                            .columns
                            .iter()
                            .position(|&cc| cc == col)
                            .expect("column belongs to table");
                        return Ok(entry.offset + pos);
                    }
                }
                Err(OracleError::UnknownColumn(c.column.clone()))
            }
        }
    }

    fn star_indices(&self, c: &ColumnRef) -> Result<Vec<usize>, OracleError> {
        match &c.table {
            None => Ok((0..self.entries.iter().map(|e| e.width).sum()).collect()),
            Some(q) => {
                let entry = self
                    .entries
                    .iter()
                    .find(|e| e.name.eq_ignore_ascii_case(q))
                    .ok_or_else(|| OracleError::UnknownTable(q.clone()))?;
                Ok((entry.offset..entry.offset + entry.width).collect())
            }
        }
    }

    fn star_headers(&self, c: &ColumnRef) -> Result<Vec<String>, OracleError> {
        let idxs = self.star_indices(c)?;
        let schema = self.db.schema();
        let mut names = Vec::with_capacity(idxs.len());
        for entry in &self.entries {
            for (pos, &col) in schema.table(entry.table).columns.iter().enumerate() {
                if idxs.contains(&(entry.offset + pos)) {
                    names.push(format!("{}.{}", entry.name, schema.column(col).name));
                }
            }
        }
        Ok(names)
    }

    fn project(&self, core: &SelectCore, ctx: &Ctx<'_>) -> Result<Vec<Datum>, OracleError> {
        let mut out = Vec::with_capacity(core.items.len());
        for it in &core.items {
            match &it.expr {
                Expr::Column(c) if c.is_star() => {
                    let idxs = self.star_indices(c)?;
                    let repr: &[Datum] = match ctx {
                        Ctx::Row(r) => r,
                        Ctx::Group(rows) => rows.first().map(|r| r.as_slice()).unwrap_or(&[]),
                    };
                    for i in idxs {
                        out.push(repr.get(i).cloned().unwrap_or(Datum::Null));
                    }
                }
                e => out.push(self.eval(e, ctx)?),
            }
        }
        Ok(out)
    }

    fn order_keys(&self, order_by: &[OrderItem], ctx: &Ctx<'_>) -> Result<Vec<Datum>, OracleError> {
        order_by.iter().map(|o| self.eval(&o.expr, ctx)).collect()
    }

    /// Executes a subquery from scratch (no result caching) and returns its
    /// single column.
    fn subquery_column(&self, sub: &SelectStmt) -> Result<Vec<Datum>, OracleError> {
        let rs = reference_execute(self.db, sub)?;
        if !rs.rows.is_empty() && rs.rows[0].len() != 1 {
            return Err(OracleError::SubqueryArity(rs.rows[0].len()));
        }
        Ok(rs.rows.into_iter().filter_map(|mut r| r.pop()).collect())
    }

    fn eval(&self, e: &Expr, ctx: &Ctx<'_>) -> Result<Datum, OracleError> {
        match e {
            Expr::Lit(l) => Ok(match l {
                Literal::Null => Datum::Null,
                Literal::Int(i) => Datum::Int(*i),
                Literal::Float(f) => Datum::Float(*f),
                Literal::Text(s) => Datum::Text(s.clone()),
            }),
            Expr::Column(c) => {
                if c.is_star() {
                    return Err(OracleError::Invalid("bare * outside count(*)".into()));
                }
                let idx = self.resolve(c)?;
                let repr: Option<&Vec<Datum>> = match ctx {
                    Ctx::Row(r) => return Ok(r.get(idx).cloned().unwrap_or(Datum::Null)),
                    Ctx::Group(rows) => rows.first(),
                };
                Ok(repr.and_then(|r| r.get(idx).cloned()).unwrap_or(Datum::Null))
            }
            Expr::Agg { func, distinct, arg } => {
                let Ctx::Group(rows) = ctx else {
                    return Err(OracleError::Invalid("aggregate outside grouped context".into()));
                };
                self.eval_aggregate(*func, *distinct, arg, rows)
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    if !truthy(&self.eval(lhs, ctx)?) {
                        return Ok(bool_datum(false));
                    }
                    Ok(bool_datum(truthy(&self.eval(rhs, ctx)?)))
                }
                BinOp::Or => {
                    if truthy(&self.eval(lhs, ctx)?) {
                        return Ok(bool_datum(true));
                    }
                    Ok(bool_datum(truthy(&self.eval(rhs, ctx)?)))
                }
                _ => {
                    let l = self.eval(lhs, ctx)?;
                    let r = self.eval(rhs, ctx)?;
                    Ok(match op {
                        BinOp::Eq => bool_datum(l.sql_eq(&r)),
                        // `!=` against NULL is false, not true (SQL
                        // three-valued logic collapsed to two values).
                        BinOp::Ne => {
                            bool_datum(!l.is_null() && !r.is_null() && !l.sql_eq(&r))
                        }
                        BinOp::Lt => cmp_datum(&l, &r, |o| o == std::cmp::Ordering::Less),
                        BinOp::Le => cmp_datum(&l, &r, |o| o != std::cmp::Ordering::Greater),
                        BinOp::Gt => cmp_datum(&l, &r, |o| o == std::cmp::Ordering::Greater),
                        BinOp::Ge => cmp_datum(&l, &r, |o| o != std::cmp::Ordering::Less),
                        BinOp::And | BinOp::Or => unreachable!("handled above"),
                    })
                }
            },
            Expr::Not(inner) => Ok(bool_datum(!truthy(&self.eval(inner, ctx)?))),
            Expr::Between { expr, low, high, negated } => {
                let v = self.eval(expr, ctx)?;
                let lo = self.eval(low, ctx)?;
                let hi = self.eval(high, ctx)?;
                let in_range = matches!(
                    v.sql_cmp(&lo),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                ) && matches!(
                    v.sql_cmp(&hi),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                Ok(bool_datum(in_range != *negated))
            }
            Expr::InList { expr, list, negated } => {
                let v = self.eval(expr, ctx)?;
                let mut found = false;
                for item in list {
                    if v.sql_eq(&self.eval(item, ctx)?) {
                        found = true;
                        break;
                    }
                }
                Ok(bool_datum(found != *negated))
            }
            Expr::InSubquery { expr, subquery, negated } => {
                let v = self.eval(expr, ctx)?;
                let vals = self.subquery_column(subquery)?;
                let found = vals.iter().any(|x| v.sql_eq(x));
                Ok(bool_datum(found != *negated))
            }
            Expr::Like { expr, pattern, negated } => {
                let v = self.eval(expr, ctx)?;
                let p = self.eval(pattern, ctx)?;
                let matched = match (v.as_text(), p.as_text()) {
                    (Some(t), Some(pat)) => like_match(&pat.to_lowercase(), &t.to_lowercase()),
                    (None, Some(pat)) if !v.is_null() => {
                        like_match(&pat.to_lowercase(), &v.to_string().to_lowercase())
                    }
                    _ => false,
                };
                Ok(bool_datum(matched != *negated))
            }
            Expr::Subquery(sub) => {
                Ok(self.subquery_column(sub)?.into_iter().next().unwrap_or(Datum::Null))
            }
        }
    }

    fn eval_aggregate(
        &self,
        func: AggFunc,
        distinct: bool,
        arg: &Expr,
        rows: &[Vec<Datum>],
    ) -> Result<Datum, OracleError> {
        let is_star = matches!(arg, Expr::Column(c) if c.is_star());
        if func == AggFunc::Count && is_star {
            return Ok(Datum::Int(rows.len() as i64));
        }
        if is_star {
            return Err(OracleError::Invalid(format!("{}(*) is not valid", func.keyword())));
        }
        let mut values = Vec::with_capacity(rows.len());
        for row in rows {
            let v = self.eval(arg, &Ctx::Row(row))?;
            if !v.is_null() {
                values.push(v);
            }
        }
        if distinct {
            let mut seen = HashSet::new();
            values.retain(|v| seen.insert(canonical_key(std::slice::from_ref(v))));
        }
        Ok(match func {
            AggFunc::Count => Datum::Int(values.len() as i64),
            AggFunc::Sum => {
                if values.is_empty() {
                    Datum::Null
                } else if values.iter().all(|v| matches!(v, Datum::Int(_))) {
                    Datum::Int(values.iter().filter_map(Datum::as_number).map(|x| x as i64).sum())
                } else {
                    Datum::Float(values.iter().filter_map(Datum::as_number).sum())
                }
            }
            AggFunc::Avg => {
                let nums: Vec<f64> = values.iter().filter_map(Datum::as_number).collect();
                if nums.is_empty() {
                    Datum::Null
                } else {
                    Datum::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFunc::Min => values.into_iter().min_by(|a, b| a.total_cmp(b)).unwrap_or(Datum::Null),
            AggFunc::Max => values.into_iter().max_by(|a, b| a.total_cmp(b)).unwrap_or(Datum::Null),
        })
    }
}

fn cmp_datum(l: &Datum, r: &Datum, f: impl Fn(std::cmp::Ordering) -> bool) -> Datum {
    match l.sql_cmp(r) {
        Some(o) => bool_datum(f(o)),
        None => bool_datum(false),
    }
}
