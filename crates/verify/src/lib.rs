//! Verification layer: differential oracle, deterministic fuzzing and
//! gradient checking.
//!
//! ValueNet's headline metric is Execution Accuracy, so the whole chain
//! SemQL 2.0 → actions → SQL → execution is only as trustworthy as its
//! weakest link. This crate actively hunts divergences in that chain:
//!
//! * [`schema_gen`] samples random schemas — tables, foreign-key trees,
//!   typed columns — and populates them with rows (including NULLs, floats
//!   and dangling foreign keys), generalising the single hard-coded `pets`
//!   schema of the integration property tests.
//! * [`tree_gen`] samples grammar-valid SemQL 2.0 trees over a generated
//!   schema, together with the resolved values their `V` pointers need.
//! * [`oracle`] is a naive reference SQL interpreter (straight nested
//!   loops, no indexes, no caches) executed side by side with
//!   `valuenet-exec`; results are compared under the paper's Execution
//!   Accuracy semantics ([`valuenet_exec::ResultSet::result_eq`]).
//! * [`gradcheck`] sweeps analytic gradients of `valuenet-nn` modules
//!   against central finite differences.
//! * [`fuzz`] ties the generators and the oracle into deterministic seed
//!   streams with bit-identical `--replay`, and [`shrink`] greedily
//!   minimises failing cases before they are reported.
//! * [`serve_fault`] turns the same seed-stream discipline on the serving
//!   engine: seeded worker panics, stage stalls, overload bursts and
//!   malformed protocol frames against a live `valuenet-serve` socket,
//!   asserting recovery, quarantine, zero worker leaks and bit-identical
//!   responses versus the single-process pipeline.
//!
//! The `vn-fuzz` binary is a thin CLI over [`fuzz::run_fuzz`] (and, with
//! `--serve N`, over [`serve_fault::run_serve_fuzz`]).

pub mod fuzz;
pub mod gradcheck;
pub mod oracle;
pub mod quant_fuzz;
pub mod schema_gen;
pub mod serve_fault;
pub mod shrink;
pub mod tree_gen;

pub use fuzz::{case_seed, run_case, run_fuzz, CaseOutcome, FuzzConfig, FuzzReport};
pub use serve_fault::{
    run_serve_case, run_serve_fuzz, ServeFixture, ServeFuzzConfig, ServeFuzzReport,
};
pub use quant_fuzz::{run_quant_case, run_quant_fuzz, QuantFuzzReport};
pub use gradcheck::{grad_check, GradCheckConfig, GradReport};
pub use oracle::{reference_execute, OracleError};
pub use schema_gen::gen_database;
pub use shrink::{shrink_case, Case};
pub use tree_gen::gen_semql;
