//! Finite-difference gradient checking.
//!
//! Compares the analytic gradients produced by `Graph::backward` against
//! central finite differences of the loss. Differences are formed in `f64`
//! even though the forward pass is `f32`: with `eps = 1e-2` the secant
//! error is O(eps²) ≈ 1e-4 relative, while f32 loss round-off contributes
//! about `1e-7 / eps` ≈ 1e-5 — both comfortably below the `1e-3` gate used
//! by the test suite. Smaller eps values make the round-off term *worse*,
//! which is why this checker uses a larger step than an f64-native one
//! would.
//!
//! The relative error metric is `|a − n| / max(|a|, |n|, 1)`: the floor of
//! 1 in the denominator keeps near-zero gradient pairs (both analytically
//! and numerically ~0) from being flagged on round-off alone.

use valuenet_nn::ParamStore;
use valuenet_tensor::{Graph, Var};

/// Knobs for a gradient sweep.
#[derive(Debug, Clone)]
pub struct GradCheckConfig {
    /// Central-difference half step.
    pub eps: f64,
    /// Maximum acceptable relative error.
    pub tolerance: f64,
    /// Per-parameter cap on checked elements; larger tensors are sampled at
    /// evenly spaced positions. `usize::MAX` checks everything.
    pub max_elems_per_param: usize,
}

impl Default for GradCheckConfig {
    fn default() -> Self {
        GradCheckConfig { eps: 1e-2, tolerance: 1e-3, max_elems_per_param: usize::MAX }
    }
}

/// Outcome of a sweep: the single worst element over all checked ones.
#[derive(Debug, Clone)]
pub struct GradReport {
    /// Largest relative error observed.
    pub max_rel_err: f64,
    /// Name of the parameter holding the worst element.
    pub worst_param: String,
    /// Flat (row-major) index of the worst element.
    pub worst_index: usize,
    /// Analytic gradient at the worst element.
    pub analytic: f64,
    /// Central-difference estimate at the worst element.
    pub numeric: f64,
    /// Total number of elements compared.
    pub checked: usize,
}

impl GradReport {
    /// Whether the sweep stayed within `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.max_rel_err < tol
    }
}

impl std::fmt::Display for GradReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max rel err {:.3e} at {}[{}] (analytic {:.6e}, numeric {:.6e}) over {} elements",
            self.max_rel_err, self.worst_param, self.worst_index, self.analytic, self.numeric,
            self.checked
        )
    }
}

/// Sweeps every parameter in `store` against central differences of `loss`.
///
/// `loss` must be a pure function of the parameter values: it is called once
/// per perturbation on a fresh [`Graph`] and must rebuild the whole forward
/// pass from `store` each time (any dropout must use a fixed mask or be
/// disabled). The store is returned in its original state.
pub fn grad_check<F>(store: &mut ParamStore, cfg: &GradCheckConfig, mut loss: F) -> GradReport
where
    F: FnMut(&mut Graph, &ParamStore) -> Var,
{
    // Analytic pass.
    let mut g = Graph::new();
    let l = loss(&mut g, store);
    let grads = g.backward(l);

    let mut report = GradReport {
        max_rel_err: 0.0,
        worst_param: String::new(),
        worst_index: 0,
        analytic: 0.0,
        numeric: 0.0,
        checked: 0,
    };

    let ids: Vec<_> = store.ids().collect();
    for id in ids {
        let (rows, cols) = store.shape(id);
        let n = rows * cols;
        let analytic = grads.for_param(id.index());
        let step = (n / cfg.max_elems_per_param.max(1)).max(1);
        let mut e = 0;
        while e < n {
            let a = analytic.as_ref().map(|t| t.as_slice()[e] as f64).unwrap_or(0.0);

            let mut original = 0.0f32;
            store.update_in_place(id, |w| {
                original = w[e];
                w[e] = (original as f64 + cfg.eps) as f32;
            });
            let plus = eval_loss(store, &mut loss);
            store.update_in_place(id, |w| w[e] = (original as f64 - cfg.eps) as f32);
            let minus = eval_loss(store, &mut loss);
            store.update_in_place(id, |w| w[e] = original);

            let num = (plus - minus) / (2.0 * cfg.eps);
            let rel = (a - num).abs() / a.abs().max(num.abs()).max(1.0);
            if rel > report.max_rel_err {
                report.max_rel_err = rel;
                report.worst_param = store.name(id).to_string();
                report.worst_index = e;
                report.analytic = a;
                report.numeric = num;
            }
            report.checked += 1;
            e += step;
        }
    }
    report
}

fn eval_loss<F>(store: &ParamStore, loss: &mut F) -> f64
where
    F: FnMut(&mut Graph, &ParamStore) -> Var,
{
    let mut g = Graph::new();
    let l = loss(&mut g, store);
    g.value(l).scalar_value() as f64
}
