//! Finite-difference gradient checks for every `valuenet-nn` module and for
//! the full encoder–decoder loss.
//!
//! Each test builds a tiny module with deterministic weights, feeds a fixed
//! input, and sweeps the analytic gradients of a scalar loss against central
//! differences (`valuenet_verify::grad_check`). The loss is `Σ y²` so that
//! every output element contributes a parameter-dependent gradient.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_nn::{
    BiLstm, Embedding, FeedForward, LayerNorm, Linear, Lstm, MultiHeadAttention, ParamStore,
    TransformerBlock,
};
use valuenet_tensor::{Graph, Tensor, Var};
use valuenet_verify::{grad_check, GradCheckConfig};

const TOL: f64 = 1e-3;

/// Deterministic input tensor with values in roughly [-0.5, 0.5].
fn fixed_input(rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|i| ((i * 7 % 13) as f32) / 13.0 - 0.5).collect();
    Tensor::from_vec(rows, cols, data)
}

/// `Σ y²` — a scalar loss with a non-trivial dependence on every output.
fn square_sum(g: &mut Graph, y: Var) -> Var {
    let sq = g.mul(y, y);
    g.sum_all(sq)
}

#[test]
fn linear_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(1);
    let layer = Linear::new(&mut ps, &mut rng, "lin", 0, 3, 2);
    let x = fixed_input(4, 3);
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(x.clone());
        let y = layer.forward(g, ps, xv);
        square_sum(g, y)
    });
    assert!(report.within(TOL), "linear: {report}");
}

#[test]
fn embedding_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(2);
    let emb = Embedding::new(&mut ps, &mut rng, "emb", 0, 5, 3);
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let y = emb.forward(g, ps, &[0, 2, 4, 2]);
        square_sum(g, y)
    });
    assert!(report.within(TOL), "embedding: {report}");
}

#[test]
fn lstm_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(3);
    let lstm = Lstm::new(&mut ps, &mut rng, "lstm", 0, 3, 4);
    let xs = fixed_input(5, 3);
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(xs.clone());
        let (hs, _) = lstm.run(g, ps, xv);
        square_sum(g, hs)
    });
    assert!(report.within(TOL), "lstm: {report}");
}

#[test]
fn bilstm_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(4);
    let bi = BiLstm::new(&mut ps, &mut rng, "bi", 0, 3, 2);
    let xs = fixed_input(4, 3);
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(xs.clone());
        let summary = bi.summarize(g, ps, xv);
        square_sum(g, summary)
    });
    assert!(report.within(TOL), "bilstm: {report}");
}

#[test]
fn attention_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(5);
    let attn = MultiHeadAttention::new(&mut ps, &mut rng, "attn", 0, 4, 2);
    let x = fixed_input(3, 4);
    // Additive mask forbidding one attention edge, as padding masks do.
    let mut mask = Tensor::zeros(3, 3);
    mask.set(0, 2, -1e9);
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(x.clone());
        let mv = g.input(mask.clone());
        let y = attn.forward(g, ps, xv, Some(mv));
        square_sum(g, y)
    });
    assert!(report.within(TOL), "attention: {report}");
}

#[test]
fn layer_norm_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let ln = LayerNorm::new(&mut ps, "ln", 0, 4);
    let x = fixed_input(3, 4);
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(x.clone());
        let y = ln.forward(g, ps, xv);
        square_sum(g, y)
    });
    assert!(report.within(TOL), "layer_norm: {report}");
}

#[test]
fn feed_forward_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(6);
    let ffn = FeedForward::new(&mut ps, &mut rng, "ffn", 0, 3, 5);
    let x = fixed_input(4, 3);
    // ReLU makes the loss nonsmooth at zero pre-activations, where the
    // secant is a biased gradient estimate at any step size. Xavier weights
    // on 3 inputs bound |w·x| by ~1.3, so a ±1.5 bias pins every unit
    // firmly inside one ReLU branch: most active, unit 4 inactive (checking
    // the zero branch), and no perturbation can cross the kink.
    for id in ps.ids().collect::<Vec<_>>() {
        if ps.name(id).ends_with("up.b") {
            ps.update_in_place(id, |w| {
                w.iter_mut().enumerate().for_each(|(i, v)| *v = if i == 4 { -1.5 } else { 1.5 });
            });
        }
    }
    let cfg = GradCheckConfig::default();
    let report = grad_check(&mut ps, &cfg, |g, ps| {
        let xv = g.input(x.clone());
        let y = ffn.forward(g, ps, xv);
        square_sum(g, y)
    });
    assert!(report.within(TOL), "feed_forward: {report}");
}

#[test]
fn transformer_block_gradients_match_finite_differences() {
    let mut ps = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(7);
    let block = TransformerBlock::new(&mut ps, &mut rng, "blk", 0, 4, 2, 6);
    let x = fixed_input(3, 4);
    let report = grad_check(&mut ps, &GradCheckConfig::default(), |g, ps| {
        let xv = g.input(x.clone());
        let y = block.forward(g, ps, xv, None);
        square_sum(g, y)
    });
    assert!(report.within(TOL), "transformer_block: {report}");
}

mod full_model {
    use super::TOL;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use valuenet_core::{build_input, Decoder, Encoder, ModelConfig, ModelInput, Vocab};
    use valuenet_nn::ParamStore;
    use valuenet_preprocess::{preprocess, CandidateConfig, HeuristicNer};
    use valuenet_schema::{ColumnType, SchemaBuilder, TableId};
    use valuenet_semql::{ast_to_actions, Action, Agg, CmpOp, Filter, QueryR, Select, SemQl, ValueRef};
    use valuenet_storage::Database;
    use valuenet_verify::{grad_check, GradCheckConfig};

    fn demo_db() -> Database {
        let schema = SchemaBuilder::new("d")
            .table(
                "student",
                &[
                    ("stu_id", ColumnType::Number),
                    ("name", ColumnType::Text),
                    ("age", ColumnType::Number),
                    ("home_country", ColumnType::Text),
                ],
            )
            .build();
        let mut db = Database::new(schema);
        let s = db.schema().table_by_name("student").unwrap();
        db.insert(s, vec![1.into(), "Alice".into(), 20.into(), "France".into()]);
        db.rebuild_index();
        db
    }

    fn micro_config() -> ModelConfig {
        ModelConfig {
            d_model: 8,
            summary_hidden: 4,
            heads: 2,
            encoder_layers: 1,
            ffn_inner: 12,
            action_dim: 6,
            decoder_hidden: 12,
            dropout: 0.0,
            max_decode_steps: 20,
            beam_width: 1,
            use_hints: true,
            encode_value_location: true,
        }
    }

    fn demo_input(db: &Database, vocab: &Vocab) -> ModelInput {
        let q = "How many students are from France?";
        let pre = preprocess(q, db, &HeuristicNer::new(), &CandidateConfig::default());
        let country = db.schema().any_column_by_name("home_country").map(|(_, c)| c).unwrap();
        let cands = vec![("France".to_string(), vec![country])];
        build_input(db, &pre, &cands, vocab)
    }

    /// `count(*)` over students from France — a grammar-valid action
    /// sequence whose C/T/V pointers all lie inside the input's ranges.
    fn gold_actions(db: &Database) -> Vec<Action> {
        let country = db.schema().any_column_by_name("home_country").map(|(_, c)| c).unwrap();
        let tree = SemQl::Single(Box::new(QueryR {
            select: Select::new(vec![Agg::count_star(TableId(0))]),
            order: None,
            superlative: None,
            filter: Some(Filter::Cmp {
                op: CmpOp::Eq,
                agg: Agg::plain(country, TableId(0)),
                value: ValueRef(0),
            }),
        }));
        ast_to_actions(&tree)
    }

    #[test]
    fn encoder_decoder_loss_gradients_match_finite_differences() {
        let db = demo_db();
        let vocab = Vocab::build(
            ["How many students are from France?", "student name age home country france"]
                .into_iter(),
        );
        let model_cfg = micro_config();
        let mut ps = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let encoder = Encoder::new(&mut ps, &mut rng, &model_cfg, vocab.len());
        let decoder = Decoder::new(&mut ps, &mut rng, &model_cfg);
        let input = demo_input(&db, &vocab);
        let gold = gold_actions(&db);

        // Subsample larger tensors (the full model has thousands of weights
        // and every probe costs two forward passes) and shrink the step so
        // perturbations don't cross the encoder FFN's ReLU kinks.
        let cfg = GradCheckConfig {
            eps: 2e-3,
            max_elems_per_param: 4,
            ..GradCheckConfig::default()
        };
        let report = grad_check(&mut ps, &cfg, |g, ps| {
            let enc = encoder.forward(g, ps, &input, 0.0, None);
            decoder.loss(g, ps, &enc, &gold)
        });
        assert!(report.within(TOL), "encoder-decoder loss: {report}");
    }
}
