//! Integration tests for the differential fuzz harness itself.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use valuenet_verify::{
    case_seed, gen_database, gen_semql, run_case, run_fuzz, CaseOutcome, FuzzConfig,
};

#[test]
fn fuzz_smoke_has_no_divergences() {
    let report = run_fuzz(&FuzzConfig { cases: 300, seed: 42, inject_divergence: false });
    assert_eq!(report.cases, 300);
    assert!(
        report.divergences.is_empty(),
        "executor and oracle diverged:\n{}",
        report.divergences[0].1
    );
    // The generator must mostly produce executable queries; a run where
    // everything errors would silently test nothing.
    assert!(report.agreements > 250, "only {} agreements", report.agreements);
}

#[test]
fn case_seeds_are_spread_and_deterministic() {
    let a: Vec<u64> = (0..50).map(|i| case_seed(42, i)).collect();
    let b: Vec<u64> = (0..50).map(|i| case_seed(42, i)).collect();
    assert_eq!(a, b);
    let mut uniq = a.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), a.len(), "case seeds collide");
    assert_ne!(case_seed(42, 0), case_seed(43, 0), "base seed must matter");
}

#[test]
fn injected_divergence_is_caught_and_replays_bit_identically() {
    let seed = case_seed(7, 0);
    let first = run_case(seed, true);
    let CaseOutcome::Divergence { seed: s1, report: r1 } = first else {
        panic!("injected corruption must diverge, got {first:?}");
    };
    assert_eq!(s1, seed);
    // Replaying the same case seed reproduces the failure byte for byte —
    // the property `vn-fuzz --replay` relies on.
    let CaseOutcome::Divergence { seed: s2, report: r2 } = run_case(seed, true) else {
        panic!("replay lost the divergence");
    };
    assert_eq!(s1, s2);
    assert_eq!(r1, r2, "replayed report differs from the original");
}

#[test]
fn injected_divergence_reports_are_shrunk() {
    // Every injected failure must come back with a reproducer: a seed line,
    // a divergence description and a database dump.
    let report = run_fuzz(&FuzzConfig { cases: 5, seed: 7, inject_divergence: true });
    assert_eq!(report.divergences.len(), 5);
    for (seed, failure) in &report.divergences {
        assert!(failure.contains(&format!("seed: {seed}")), "missing seed line:\n{failure}");
        assert!(failure.contains("database:"), "missing database dump:\n{failure}");
        assert!(!failure.contains("shrinker bug"), "shrinker broke the case:\n{failure}");
    }
}

#[test]
fn generated_databases_are_schema_consistent() {
    for i in 0..30 {
        let mut rng = SmallRng::seed_from_u64(case_seed(9, i));
        let db = gen_database(&mut rng);
        let schema = db.schema();
        assert!(!schema.tables.is_empty());
        for (ti, table) in schema.tables.iter().enumerate() {
            for row in db.rows(valuenet_schema::TableId(ti)) {
                assert_eq!(row.len(), table.columns.len(), "row arity mismatch in {}", table.name);
            }
        }
        // Every generated tree must reference values consistently.
        let (tree, values) = gen_semql(&mut rng, &db);
        for r in tree.value_refs() {
            assert!(r.0 < values.len(), "dangling ValueRef {:?}", r);
        }
    }
}
