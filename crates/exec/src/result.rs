//! Result sets and the Execution Accuracy comparison.

use std::fmt;
use valuenet_storage::Datum;

/// The rows produced by executing a query.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Column headers (expression texts or aliases).
    pub headers: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Datum>>,
    /// Whether row order is semantically meaningful (final `ORDER BY`).
    pub ordered: bool,
}

impl ResultSet {
    /// An empty, unordered result with the given headers.
    pub fn empty(headers: Vec<String>) -> Self {
        ResultSet { headers, rows: Vec::new(), ordered: false }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The Execution Accuracy comparison, mirroring the official Spider
    /// evaluation: results must have the same arity and the same rows —
    /// position-wise when *both* sides carry a meaningful order, as
    /// multisets otherwise. Floats compare with a small relative tolerance.
    pub fn result_eq(&self, other: &ResultSet) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let arity_l = self.rows.first().map_or(self.headers.len(), Vec::len);
        let arity_r = other.rows.first().map_or(other.headers.len(), Vec::len);
        if !self.rows.is_empty() && arity_l != arity_r {
            return false;
        }
        if self.ordered && other.ordered {
            rows_eq(&self.rows, &other.rows)
        } else {
            let mut l = self.rows.clone();
            let mut r = other.rows.clone();
            sort_rows(&mut l);
            sort_rows(&mut r);
            rows_eq(&l, &r)
        }
    }
}

fn rows_eq(l: &[Vec<Datum>], r: &[Vec<Datum>]) -> bool {
    l.iter().zip(r).all(|(a, b)| a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.result_eq(y)))
}

fn sort_rows(rows: &mut [Vec<Datum>]) {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
}

/// Canonical text key for a row, used for DISTINCT, GROUP BY and set
/// operations. Numeric values canonicalise so `Int(2)` and `Float(2.0)`
/// coincide, matching SQL value semantics.
pub(crate) fn row_key(row: &[Datum]) -> String {
    let mut key = String::with_capacity(row.len() * 8);
    for d in row {
        match d {
            Datum::Null => key.push_str("\u{1}N"),
            Datum::Int(i) => {
                key.push_str("\u{1}n");
                key.push_str(&format!("{:.9e}", *i as f64));
            }
            Datum::Float(f) => {
                key.push_str("\u{1}n");
                key.push_str(&format!("{f:.9e}"));
            }
            Datum::Text(s) => {
                key.push_str("\u{1}t");
                key.push_str(s);
            }
        }
    }
    key
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.headers.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|d| d.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<Datum>>, ordered: bool) -> ResultSet {
        ResultSet { headers: vec!["c".into()], rows, ordered }
    }

    #[test]
    fn unordered_comparison_is_multiset() {
        let a = rs(vec![vec![1.into()], vec![2.into()]], false);
        let b = rs(vec![vec![2.into()], vec![1.into()]], false);
        assert!(a.result_eq(&b));
    }

    #[test]
    fn ordered_comparison_is_positional() {
        let a = rs(vec![vec![1.into()], vec![2.into()]], true);
        let b = rs(vec![vec![2.into()], vec![1.into()]], true);
        assert!(!a.result_eq(&b));
        let c = rs(vec![vec![1.into()], vec![2.into()]], true);
        assert!(a.result_eq(&c));
    }

    #[test]
    fn mixed_order_falls_back_to_multiset() {
        // If only one side is ordered the comparison is lenient, mirroring
        // the official script's handling.
        let a = rs(vec![vec![1.into()], vec![2.into()]], true);
        let b = rs(vec![vec![2.into()], vec![1.into()]], false);
        assert!(a.result_eq(&b));
    }

    #[test]
    fn duplicates_matter_in_multisets() {
        let a = rs(vec![vec![1.into()], vec![1.into()]], false);
        let b = rs(vec![vec![1.into()]], false);
        assert!(!a.result_eq(&b));
    }

    #[test]
    fn numeric_coercion_in_keys() {
        assert_eq!(row_key(&[Datum::Int(2)]), row_key(&[Datum::Float(2.0)]));
        assert_ne!(row_key(&[Datum::Int(2)]), row_key(&[Datum::Text("2".into())]));
        assert_ne!(row_key(&[Datum::Null]), row_key(&[Datum::Text("".into())]));
    }

    #[test]
    fn float_tolerance() {
        let a = rs(vec![vec![Datum::Float(0.333333333)]], false);
        let b = rs(vec![vec![Datum::Float(0.333333334)]], false);
        assert!(a.result_eq(&b));
    }
}
