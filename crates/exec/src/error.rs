//! Executor errors.

use std::fmt;

/// A query could not be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A `FROM`/`JOIN` names a table the schema does not contain.
    UnknownTable(String),
    /// A column reference does not resolve against the query's tables.
    UnknownColumn(String),
    /// The query has no `FROM` clause but references columns.
    NoFrom,
    /// A compound query combines results of different arity.
    ArityMismatch {
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// A subquery used as a scalar or IN source projects more than one column.
    SubqueryArity(usize),
    /// Any other malformed query.
    Invalid(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExecError::NoFrom => write!(f, "column reference without FROM clause"),
            ExecError::ArityMismatch { left, right } => {
                write!(f, "compound operands have different arity ({left} vs {right})")
            }
            ExecError::SubqueryArity(n) => {
                write!(f, "subquery must project exactly one column, got {n}")
            }
            ExecError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}
