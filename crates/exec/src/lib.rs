//! SQL executor over the in-memory database.
//!
//! The Spider *Execution Accuracy* metric — the one ValueNet is evaluated on
//! — requires actually running both the predicted and the gold query and
//! comparing their results. This crate executes the SQL subset produced by
//! the SemQL 2.0 grammar: inner joins with `ON` clauses (a join without one
//! degenerates to the cross join the paper warns about), WHERE with
//! AND/OR/NOT, comparisons against literals and uncorrelated scalar
//! subqueries, BETWEEN / LIKE / IN (list and subquery), GROUP BY + HAVING
//! with the five standard aggregates, DISTINCT, ORDER BY + LIMIT, and
//! UNION / UNION ALL / INTERSECT / EXCEPT.
//!
//! ```
//! use valuenet_exec::execute;
//! use valuenet_schema::{ColumnType, SchemaBuilder};
//! use valuenet_sql::parse_select;
//! use valuenet_storage::Database;
//!
//! let schema = SchemaBuilder::new("demo")
//!     .table("t", &[("a", ColumnType::Number), ("b", ColumnType::Text)])
//!     .build();
//! let mut db = Database::new(schema);
//! let t = db.schema().table_by_name("t").unwrap();
//! db.insert(t, vec![1.into(), "x".into()]);
//! db.insert(t, vec![2.into(), "y".into()]);
//! db.rebuild_index();
//!
//! let q = parse_select("SELECT count(*) FROM t WHERE a > 1").unwrap();
//! let rs = execute(&db, &q).unwrap();
//! assert_eq!(rs.rows[0][0].as_number(), Some(1.0));
//! ```

mod error;
mod executor;
mod result;

pub use error::ExecError;
pub use executor::execute;
pub use result::ResultSet;
