//! Query evaluation.

use crate::result::row_key;
use crate::{ExecError, ResultSet};
use std::collections::{HashMap, HashSet};
use valuenet_sql::{
    AggFunc, BinOp, ColumnRef, CompoundOp, Expr, SelectCore, SelectStmt,
};
use valuenet_storage::{like_match, Database, Datum};
use valuenet_schema::TableId;

static QUERIES: valuenet_obs::Counter = valuenet_obs::Counter::new("exec.queries");
static ROWS_SCANNED: valuenet_obs::Counter = valuenet_obs::Counter::new("exec.rows_scanned");

/// Executes a query against a database.
pub fn execute(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, ExecError> {
    let _span = valuenet_obs::span("exec.execute");
    QUERIES.add(1);
    let mut left = execute_plain(db, stmt)?;
    if let Some((op, rhs)) = &stmt.compound {
        let right = execute(db, rhs)?;
        if !left.rows.is_empty() && !right.rows.is_empty() {
            let (la, ra) = (left.rows[0].len(), right.rows[0].len());
            if la != ra {
                return Err(ExecError::ArityMismatch { left: la, right: ra });
            }
        }
        left = apply_compound(*op, left, right);
    }
    Ok(left)
}

fn apply_compound(op: CompoundOp, left: ResultSet, right: ResultSet) -> ResultSet {
    let headers = left.headers.clone();
    let rows = match op {
        CompoundOp::UnionAll => {
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        CompoundOp::Union => {
            let mut seen = HashSet::new();
            let mut rows = Vec::new();
            for r in left.rows.into_iter().chain(right.rows) {
                if seen.insert(row_key(&r)) {
                    rows.push(r);
                }
            }
            rows
        }
        CompoundOp::Intersect => {
            let right_keys: HashSet<String> = right.rows.iter().map(|r| row_key(r)).collect();
            let mut seen = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| {
                    let k = row_key(r);
                    right_keys.contains(&k) && seen.insert(k)
                })
                .collect()
        }
        CompoundOp::Except => {
            let right_keys: HashSet<String> = right.rows.iter().map(|r| row_key(r)).collect();
            let mut seen = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| {
                    let k = row_key(r);
                    !right_keys.contains(&k) && seen.insert(k)
                })
                .collect()
        }
    };
    // A compound result has no meaningful final order in this dialect.
    ResultSet { headers, rows, ordered: false }
}

/// Executes `core + ORDER BY + LIMIT`, ignoring any compound tail.
fn execute_plain(db: &Database, stmt: &SelectStmt) -> Result<ResultSet, ExecError> {
    let env = Env::build(db, &stmt.core)?;
    let source_rows = env.joined_rows(&stmt.core)?;
    ROWS_SCANNED.add(source_rows.len() as u64);
    let ev = Evaluator::new(db, &env);

    // Filter with WHERE.
    let mut kept: Vec<Vec<Datum>> = Vec::with_capacity(source_rows.len());
    for row in source_rows {
        let keep = match &stmt.core.where_clause {
            Some(pred) => truthy(&ev.eval(pred, &Ctx::Row(&row))?),
            None => true,
        };
        if keep {
            kept.push(row);
        }
    }

    let has_agg = stmt.core.items.iter().any(|it| it.expr.contains_aggregate())
        || stmt.core.having.as_ref().is_some_and(Expr::contains_aggregate)
        || stmt.order_by.iter().any(|o| o.expr.contains_aggregate());
    let grouped = !stmt.core.group_by.is_empty() || has_agg;

    let mut headers = Vec::new();
    for it in &stmt.core.items {
        match &it.expr {
            Expr::Column(c) if c.is_star() => {
                headers.extend(ev.star_headers(c)?);
            }
            e => headers.push(it.alias.clone().unwrap_or_else(|| e.to_string())),
        }
    }

    // Produce (projected row, sort key) pairs.
    let mut produced: Vec<(Vec<Datum>, Vec<Datum>)> = Vec::new();
    if grouped {
        // Group rows by the GROUP BY key (single implicit group if empty).
        let mut groups: Vec<Vec<Vec<Datum>>> = Vec::new();
        if stmt.core.group_by.is_empty() {
            groups.push(kept);
        } else {
            let mut keys: Vec<String> = Vec::new();
            for row in kept {
                let mut kv = Vec::with_capacity(stmt.core.group_by.len());
                for gexpr in &stmt.core.group_by {
                    kv.push(ev.eval(gexpr, &Ctx::Row(&row))?);
                }
                let k = row_key(&kv);
                match keys.iter().position(|x| *x == k) {
                    Some(i) => groups[i].push(row),
                    None => {
                        keys.push(k);
                        groups.push(vec![row]);
                    }
                }
            }
        }
        for rows in &groups {
            let ctx = Ctx::Group(rows);
            if let Some(h) = &stmt.core.having {
                if !truthy(&ev.eval(h, &ctx)?) {
                    continue;
                }
            }
            let out = ev.project(&stmt.core, &ctx)?;
            let key = ev.order_keys(&stmt.order_by, &ctx)?;
            produced.push((out, key));
        }
    } else {
        for row in &kept {
            let ctx = Ctx::Row(row);
            let out = ev.project(&stmt.core, &ctx)?;
            let key = ev.order_keys(&stmt.order_by, &ctx)?;
            produced.push((out, key));
        }
    }

    if !stmt.order_by.is_empty() {
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, o) in stmt.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if o.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let mut rows: Vec<Vec<Datum>> = produced.into_iter().map(|(r, _)| r).collect();

    if stmt.core.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(row_key(r)));
    }

    if let Some(limit) = stmt.limit {
        rows.truncate(limit as usize);
    }

    Ok(ResultSet { headers, rows, ordered: stmt.is_ordered() })
}

fn truthy(d: &Datum) -> bool {
    match d {
        Datum::Null => false,
        Datum::Int(i) => *i != 0,
        Datum::Float(f) => *f != 0.0,
        Datum::Text(_) => false,
    }
}

fn bool_datum(b: bool) -> Datum {
    Datum::Int(i64::from(b))
}

/// One table bound in the FROM/JOIN list.
struct EnvEntry {
    /// Effective name (alias or table name).
    name: String,
    table: TableId,
    /// Flat offset of this table's first column in a combined row.
    offset: usize,
    width: usize,
}

struct Env<'a> {
    db: &'a Database,
    entries: Vec<EnvEntry>,
}

impl<'a> Env<'a> {
    fn build(db: &'a Database, core: &SelectCore) -> Result<Self, ExecError> {
        let mut entries = Vec::new();
        let mut offset = 0;
        let mut push = |name: String, table_name: &str| -> Result<(), ExecError> {
            let table = db
                .schema()
                .table_by_name(table_name)
                .ok_or_else(|| ExecError::UnknownTable(table_name.to_string()))?;
            let width = db.schema().table(table).columns.len();
            entries.push(EnvEntry { name, table, offset, width });
            offset += width;
            Ok(())
        };
        if let Some(from) = &core.from {
            push(from.effective_name().to_string(), &from.name)?;
            for j in &core.joins {
                push(j.table.effective_name().to_string(), &j.table.name)?;
            }
        }
        Ok(Env { db, entries })
    }

    /// Computes the joined row set, applying each join's ON predicate as the
    /// table is attached (a join without ON degenerates to a cross join).
    fn joined_rows(&self, core: &SelectCore) -> Result<Vec<Vec<Datum>>, ExecError> {
        if self.entries.is_empty() {
            // No FROM: a single empty row lets `SELECT 1` work.
            return Ok(vec![Vec::new()]);
        }
        let ev = Evaluator::new(self.db, self);
        let first = &self.entries[0];
        let mut rows: Vec<Vec<Datum>> = self.db.rows(first.table).to_vec();
        for (ji, join) in core.joins.iter().enumerate() {
            let entry = &self.entries[ji + 1];
            let right_rows = self.db.rows(entry.table);
            // Fast path: a single equi-join condition between an
            // already-joined column and a column of the new table becomes a
            // hash join; anything else falls back to the nested loop.
            if let Some((left_idx, right_local)) = self.equi_join_key(join, entry)? {
                let mut table: HashMap<String, Vec<usize>> = HashMap::new();
                for (ri, right) in right_rows.iter().enumerate() {
                    let key = &right[right_local];
                    if key.is_null() {
                        continue; // NULL never joins
                    }
                    table
                        .entry(row_key(std::slice::from_ref(key)))
                        .or_default()
                        .push(ri);
                }
                let mut next = Vec::new();
                for left in &rows {
                    let key = &left[left_idx];
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&row_key(std::slice::from_ref(key))) {
                        for &ri in matches {
                            let right = &right_rows[ri];
                            let mut combined =
                                Vec::with_capacity(left.len() + right.len());
                            combined.extend_from_slice(left);
                            combined.extend_from_slice(right);
                            next.push(combined);
                        }
                    }
                }
                rows = next;
                continue;
            }
            let mut next = Vec::new();
            for left in &rows {
                for right in right_rows {
                    let mut combined = Vec::with_capacity(left.len() + right.len());
                    combined.extend_from_slice(left);
                    combined.extend_from_slice(right);
                    let keep = match &join.on {
                        Some(on) => truthy(&ev.eval(on, &Ctx::Row(&combined))?),
                        None => true,
                    };
                    if keep {
                        next.push(combined);
                    }
                }
            }
            rows = next;
        }
        Ok(rows)
    }

    /// Detects `ON a = b` where one side lives in the already-joined prefix
    /// and the other in the newly attached table. Returns the flat index on
    /// the left and the local offset within the right table.
    fn equi_join_key(
        &self,
        join: &valuenet_sql::Join,
        entry: &EnvEntry,
    ) -> Result<Option<(usize, usize)>, ExecError> {
        let Some(Expr::Binary { op: BinOp::Eq, lhs, rhs }) = &join.on else {
            return Ok(None);
        };
        let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) else {
            return Ok(None);
        };
        let ia = self.resolve(a)?;
        let ib = self.resolve(b)?;
        let right_range = entry.offset..entry.offset + entry.width;
        if ia < entry.offset && right_range.contains(&ib) {
            Ok(Some((ia, ib - entry.offset)))
        } else if ib < entry.offset && right_range.contains(&ia) {
            Ok(Some((ib, ia - entry.offset)))
        } else {
            Ok(None)
        }
    }

    /// Resolves a (non-star) column reference to its flat index.
    fn resolve(&self, c: &ColumnRef) -> Result<usize, ExecError> {
        if self.entries.is_empty() {
            return Err(ExecError::NoFrom);
        }
        let schema = self.db.schema();
        match &c.table {
            Some(q) => {
                // Aliases take precedence: a physical table name only
                // addresses an entry when no effective name matches, so an
                // alias can never be shadowed by another table's physical
                // name (found by differential fuzzing against the oracle).
                let entry = self
                    .entries
                    .iter()
                    .find(|e| e.name.eq_ignore_ascii_case(q))
                    .or_else(|| {
                        self.entries
                            .iter()
                            .find(|e| schema.table(e.table).name.eq_ignore_ascii_case(q))
                    })
                    .ok_or_else(|| ExecError::UnknownTable(q.clone()))?;
                let col = schema
                    .column_by_name(entry.table, &c.column)
                    .ok_or_else(|| ExecError::UnknownColumn(format!("{q}.{}", c.column)))?;
                let pos = schema
                    .table(entry.table)
                    .columns
                    .iter()
                    .position(|&cc| cc == col)
                    .expect("column belongs to table");
                Ok(entry.offset + pos)
            }
            None => {
                // Unqualified: first table that has the column (lenient, like
                // the official evaluation harness).
                for entry in &self.entries {
                    if let Some(col) = schema.column_by_name(entry.table, &c.column) {
                        let pos = schema
                            .table(entry.table)
                            .columns
                            .iter()
                            .position(|&cc| cc == col)
                            .expect("column belongs to table");
                        return Ok(entry.offset + pos);
                    }
                }
                Err(ExecError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Flat indices covered by a star reference.
    fn star_indices(&self, c: &ColumnRef) -> Result<Vec<usize>, ExecError> {
        match &c.table {
            None => Ok((0..self.entries.iter().map(|e| e.width).sum()).collect()),
            Some(q) => {
                let entry = self
                    .entries
                    .iter()
                    .find(|e| e.name.eq_ignore_ascii_case(q))
                    .ok_or_else(|| ExecError::UnknownTable(q.clone()))?;
                Ok((entry.offset..entry.offset + entry.width).collect())
            }
        }
    }
}

/// Evaluation context: a single row, or a group of rows (aggregates allowed).
enum Ctx<'a> {
    Row(&'a [Datum]),
    Group(&'a [Vec<Datum>]),
}

struct Evaluator<'a> {
    db: &'a Database,
    env: &'a Env<'a>,
    /// Results of uncorrelated subqueries, evaluated once and reused across
    /// rows (keyed by the subquery's address within the borrowed statement).
    subquery_cache: std::cell::RefCell<HashMap<usize, Vec<Datum>>>,
}

impl<'a> Evaluator<'a> {
    fn new(db: &'a Database, env: &'a Env<'a>) -> Self {
        Evaluator { db, env, subquery_cache: std::cell::RefCell::new(HashMap::new()) }
    }

    fn project(&self, core: &SelectCore, ctx: &Ctx<'_>) -> Result<Vec<Datum>, ExecError> {
        let mut out = Vec::with_capacity(core.items.len());
        for it in &core.items {
            match &it.expr {
                Expr::Column(c) if c.is_star() => {
                    let idxs = self.env.star_indices(c)?;
                    let repr: &[Datum] = match ctx {
                        Ctx::Row(r) => r,
                        Ctx::Group(rows) => rows.first().map(|r| r.as_slice()).unwrap_or(&[]),
                    };
                    for i in idxs {
                        out.push(repr.get(i).cloned().unwrap_or(Datum::Null));
                    }
                }
                e => out.push(self.eval(e, ctx)?),
            }
        }
        Ok(out)
    }

    fn star_headers(&self, c: &ColumnRef) -> Result<Vec<String>, ExecError> {
        let idxs = self.env.star_indices(c)?;
        let schema = self.db.schema();
        let mut names = Vec::with_capacity(idxs.len());
        for entry in &self.env.entries {
            for (pos, &col) in schema.table(entry.table).columns.iter().enumerate() {
                if idxs.contains(&(entry.offset + pos)) {
                    names.push(format!("{}.{}", entry.name, schema.column(col).name));
                }
            }
        }
        Ok(names)
    }

    fn order_keys(
        &self,
        order_by: &[valuenet_sql::OrderItem],
        ctx: &Ctx<'_>,
    ) -> Result<Vec<Datum>, ExecError> {
        order_by.iter().map(|o| self.eval(&o.expr, ctx)).collect()
    }

    fn eval(&self, e: &Expr, ctx: &Ctx<'_>) -> Result<Datum, ExecError> {
        match e {
            Expr::Lit(l) => Ok(match l {
                valuenet_sql::Literal::Null => Datum::Null,
                valuenet_sql::Literal::Int(i) => Datum::Int(*i),
                valuenet_sql::Literal::Float(f) => Datum::Float(*f),
                valuenet_sql::Literal::Text(s) => Datum::Text(s.clone()),
            }),
            Expr::Column(c) => {
                if c.is_star() {
                    return Err(ExecError::Invalid("bare * outside count(*)".into()));
                }
                let idx = self.env.resolve(c)?;
                let repr: Option<&Vec<Datum>> = match ctx {
                    Ctx::Row(r) => return Ok(r.get(idx).cloned().unwrap_or(Datum::Null)),
                    Ctx::Group(rows) => rows.first(),
                };
                Ok(repr.and_then(|r| r.get(idx).cloned()).unwrap_or(Datum::Null))
            }
            Expr::Agg { func, distinct, arg } => {
                let Ctx::Group(rows) = ctx else {
                    return Err(ExecError::Invalid("aggregate outside grouped context".into()));
                };
                self.eval_aggregate(*func, *distinct, arg, rows)
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    let l = truthy(&self.eval(lhs, ctx)?);
                    if !l {
                        return Ok(bool_datum(false));
                    }
                    Ok(bool_datum(truthy(&self.eval(rhs, ctx)?)))
                }
                BinOp::Or => {
                    let l = truthy(&self.eval(lhs, ctx)?);
                    if l {
                        return Ok(bool_datum(true));
                    }
                    Ok(bool_datum(truthy(&self.eval(rhs, ctx)?)))
                }
                _ => {
                    let l = self.eval_operand(lhs, ctx)?;
                    let r = self.eval_operand(rhs, ctx)?;
                    Ok(match op {
                        BinOp::Eq => bool_datum(l.sql_eq(&r)),
                        BinOp::Ne => {
                            if l.is_null() || r.is_null() {
                                bool_datum(false)
                            } else {
                                bool_datum(!l.sql_eq(&r))
                            }
                        }
                        BinOp::Lt => cmp_datum(&l, &r, |o| o == std::cmp::Ordering::Less),
                        BinOp::Le => cmp_datum(&l, &r, |o| o != std::cmp::Ordering::Greater),
                        BinOp::Gt => cmp_datum(&l, &r, |o| o == std::cmp::Ordering::Greater),
                        BinOp::Ge => cmp_datum(&l, &r, |o| o != std::cmp::Ordering::Less),
                        BinOp::And | BinOp::Or => unreachable!("handled above"),
                    })
                }
            },
            Expr::Not(inner) => Ok(bool_datum(!truthy(&self.eval(inner, ctx)?))),
            Expr::Between { expr, low, high, negated } => {
                let v = self.eval_operand(expr, ctx)?;
                let lo = self.eval_operand(low, ctx)?;
                let hi = self.eval_operand(high, ctx)?;
                let in_range = matches!(
                    v.sql_cmp(&lo),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                ) && matches!(
                    v.sql_cmp(&hi),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                Ok(bool_datum(in_range != *negated))
            }
            Expr::InList { expr, list, negated } => {
                let v = self.eval_operand(expr, ctx)?;
                let mut found = false;
                for item in list {
                    if v.sql_eq(&self.eval_operand(item, ctx)?) {
                        found = true;
                        break;
                    }
                }
                Ok(bool_datum(found != *negated))
            }
            Expr::InSubquery { expr, subquery, negated } => {
                let v = self.eval_operand(expr, ctx)?;
                let vals = self.subquery_column(subquery)?;
                let found = vals.iter().any(|x| v.sql_eq(x));
                Ok(bool_datum(found != *negated))
            }
            Expr::Like { expr, pattern, negated } => {
                let v = self.eval_operand(expr, ctx)?;
                let p = self.eval_operand(pattern, ctx)?;
                // SQLite semantics: case-insensitive for ASCII; NULL → false.
                let matched = match (v.as_text(), p.as_text()) {
                    (Some(t), Some(pat)) => {
                        like_match(&pat.to_lowercase(), &t.to_lowercase())
                    }
                    // LIKE against numbers compares their text form.
                    (None, Some(pat)) if !v.is_null() => {
                        like_match(&pat.to_lowercase(), &v.to_string().to_lowercase())
                    }
                    _ => false,
                };
                Ok(bool_datum(matched != *negated))
            }
            Expr::Subquery(sub) => self.scalar_subquery(sub),
        }
    }

    /// Evaluates a comparison operand; a scalar subquery yields its single
    /// value, everything else is a normal expression.
    fn eval_operand(&self, e: &Expr, ctx: &Ctx<'_>) -> Result<Datum, ExecError> {
        self.eval(e, ctx)
    }

    fn scalar_subquery(&self, sub: &SelectStmt) -> Result<Datum, ExecError> {
        let col = self.subquery_column(sub)?;
        Ok(col.into_iter().next().unwrap_or(Datum::Null))
    }

    /// Executes an (uncorrelated) subquery once and caches its single-column
    /// result, so WHERE predicates do not re-run it per candidate row.
    fn subquery_column(&self, sub: &SelectStmt) -> Result<Vec<Datum>, ExecError> {
        let key = sub as *const SelectStmt as usize;
        if let Some(cached) = self.subquery_cache.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let rs = execute(self.db, sub)?;
        if !rs.rows.is_empty() && rs.rows[0].len() != 1 {
            return Err(ExecError::SubqueryArity(rs.rows[0].len()));
        }
        let col: Vec<Datum> = rs.rows.into_iter().filter_map(|mut r| r.pop()).collect();
        self.subquery_cache.borrow_mut().insert(key, col.clone());
        Ok(col)
    }

    fn eval_aggregate(
        &self,
        func: AggFunc,
        distinct: bool,
        arg: &Expr,
        rows: &[Vec<Datum>],
    ) -> Result<Datum, ExecError> {
        // count(*) counts rows regardless of values.
        let is_star = matches!(arg, Expr::Column(c) if c.is_star());
        if func == AggFunc::Count && is_star {
            return Ok(Datum::Int(rows.len() as i64));
        }
        if is_star {
            return Err(ExecError::Invalid(format!("{}(*) is not valid", func.keyword())));
        }
        let mut values = Vec::with_capacity(rows.len());
        for row in rows {
            let v = self.eval(arg, &Ctx::Row(row))?;
            if !v.is_null() {
                values.push(v);
            }
        }
        if distinct {
            let mut seen = HashSet::new();
            values.retain(|v| seen.insert(row_key(std::slice::from_ref(v))));
        }
        Ok(match func {
            AggFunc::Count => Datum::Int(values.len() as i64),
            AggFunc::Sum => {
                if values.is_empty() {
                    Datum::Null
                } else {
                    let all_int = values.iter().all(|v| matches!(v, Datum::Int(_)));
                    if all_int {
                        Datum::Int(values.iter().map(|v| v.as_number().unwrap() as i64).sum())
                    } else {
                        Datum::Float(values.iter().filter_map(Datum::as_number).sum())
                    }
                }
            }
            AggFunc::Avg => {
                let nums: Vec<f64> = values.iter().filter_map(Datum::as_number).collect();
                if nums.is_empty() {
                    Datum::Null
                } else {
                    Datum::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFunc::Min => values
                .into_iter()
                .min_by(|a, b| a.total_cmp(b))
                .unwrap_or(Datum::Null),
            AggFunc::Max => values
                .into_iter()
                .max_by(|a, b| a.total_cmp(b))
                .unwrap_or(Datum::Null),
        })
    }
}

fn cmp_datum(l: &Datum, r: &Datum, f: impl Fn(std::cmp::Ordering) -> bool) -> Datum {
    match l.sql_cmp(r) {
        Some(o) => bool_datum(f(o)),
        None => bool_datum(false),
    }
}
