//! Executor edge cases beyond the main semantics suite.

use valuenet_exec::{execute, ResultSet};
use valuenet_schema::{ColumnType, SchemaBuilder};
use valuenet_sql::parse_select;
use valuenet_storage::{Database, Datum};

fn db() -> Database {
    let schema = SchemaBuilder::new("edge")
        .table(
            "t",
            &[
                ("id", ColumnType::Number),
                ("grp", ColumnType::Text),
                ("sub", ColumnType::Text),
                ("v", ColumnType::Number),
            ],
        )
        .primary_key("t", "id")
        .table("u", &[("id", ColumnType::Number), ("w", ColumnType::Number)])
        .build();
    let mut db = Database::new(schema);
    let t = db.schema().table_by_name("t").unwrap();
    let u = db.schema().table_by_name("u").unwrap();
    for (id, grp, sub, v) in [
        (1, "a", "x", 10),
        (2, "a", "y", 20),
        (3, "a", "y", 30),
        (4, "b", "x", 40),
        (5, "b", "x", 50),
    ] {
        db.insert(t, vec![id.into(), grp.into(), sub.into(), v.into()]);
    }
    db.insert(u, vec![1.into(), 100.into()]);
    db.insert(u, vec![9.into(), 900.into()]);
    db.rebuild_index();
    db
}

fn run(db: &Database, sql: &str) -> ResultSet {
    execute(db, &parse_select(sql).unwrap()).unwrap()
}

#[test]
fn group_by_multiple_keys() {
    let d = db();
    let rs = run(&d, "SELECT grp, sub, count(*) FROM t GROUP BY grp, sub ORDER BY grp ASC, sub ASC");
    let rows: Vec<(String, String, f64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string(), r[2].as_number().unwrap()))
        .collect();
    assert_eq!(
        rows,
        vec![
            ("a".into(), "x".into(), 1.0),
            ("a".into(), "y".into(), 2.0),
            ("b".into(), "x".into(), 2.0),
        ]
    );
}

#[test]
fn chained_compounds() {
    let d = db();
    // a ∪ b then ∩ {a}: with the right-associative dialect this is
    // a ∪ (b ∩ a) = {a}... so build left part yielding both groups.
    let rs = run(
        &d,
        "SELECT grp FROM t WHERE v < 25 UNION SELECT grp FROM t WHERE v > 35 \
         INTERSECT SELECT grp FROM t WHERE v > 45",
    );
    // Right-assoc: (v>35) ∩ (v>45) = {b}; ∪ (v<25 → {a}) = {a, b}.
    let mut got: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    got.sort();
    assert_eq!(got, vec!["a", "b"]);
}

#[test]
fn distinct_after_order() {
    let d = db();
    let rs = run(&d, "SELECT DISTINCT grp FROM t ORDER BY grp DESC");
    let got: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(got, vec!["b", "a"]);
    assert!(rs.ordered);
}

#[test]
fn hash_join_matches_nested_loop_semantics() {
    let d = db();
    // Equi-join goes through the hash path...
    let hash = run(&d, "SELECT count(*) FROM t JOIN u ON t.id = u.id");
    assert_eq!(hash.rows[0][0].as_number(), Some(1.0));
    // ...a non-equi ON falls back to the nested loop; results must be
    // consistent with manual reasoning: pairs where t.id < u.id.
    let nested = run(&d, "SELECT count(*) FROM t JOIN u ON t.id < u.id");
    // u.id=1: none (t.id >= 1); u.id=9: all five.
    assert_eq!(nested.rows[0][0].as_number(), Some(5.0));
}

#[test]
fn join_on_reversed_operands_uses_hash_path() {
    let d = db();
    let a = run(&d, "SELECT count(*) FROM t JOIN u ON t.id = u.id");
    let b = run(&d, "SELECT count(*) FROM t JOIN u ON u.id = t.id");
    assert!(a.result_eq(&b));
}

#[test]
fn null_keys_never_hash_join() {
    let schema = SchemaBuilder::new("n")
        .table("a", &[("k", ColumnType::Number)])
        .table("b", &[("k", ColumnType::Number)])
        .build();
    let mut d = Database::new(schema);
    let a = d.schema().table_by_name("a").unwrap();
    let b = d.schema().table_by_name("b").unwrap();
    d.insert(a, vec![Datum::Null]);
    d.insert(a, vec![1.into()]);
    d.insert(b, vec![Datum::Null]);
    d.insert(b, vec![1.into()]);
    d.rebuild_index();
    let rs = run(&d, "SELECT count(*) FROM a JOIN b ON a.k = b.k");
    assert_eq!(rs.rows[0][0].as_number(), Some(1.0), "NULL = NULL must not join");
}

#[test]
fn cross_type_numeric_join_keys() {
    let schema = SchemaBuilder::new("x")
        .table("a", &[("k", ColumnType::Number)])
        .table("b", &[("k", ColumnType::Number)])
        .build();
    let mut d = Database::new(schema);
    let a = d.schema().table_by_name("a").unwrap();
    let b = d.schema().table_by_name("b").unwrap();
    d.insert(a, vec![Datum::Int(2)]);
    d.insert(b, vec![Datum::Float(2.0)]);
    d.rebuild_index();
    let rs = run(&d, "SELECT count(*) FROM a JOIN b ON a.k = b.k");
    assert_eq!(rs.rows[0][0].as_number(), Some(1.0), "Int(2) must hash-join Float(2.0)");
}

#[test]
fn having_without_group_by() {
    let d = db();
    // Single implicit group; HAVING filters the whole result.
    let rs = run(&d, "SELECT count(*) FROM t HAVING count(*) > 3");
    assert_eq!(rs.rows.len(), 1);
    let rs = run(&d, "SELECT count(*) FROM t HAVING count(*) > 99");
    assert!(rs.rows.is_empty());
}

#[test]
fn order_by_two_directions() {
    let d = db();
    let rs = run(&d, "SELECT grp, v FROM t ORDER BY grp ASC, v DESC");
    let got: Vec<(String, f64)> =
        rs.rows.iter().map(|r| (r[0].to_string(), r[1].as_number().unwrap())).collect();
    assert_eq!(
        got,
        vec![
            ("a".into(), 30.0),
            ("a".into(), 20.0),
            ("a".into(), 10.0),
            ("b".into(), 50.0),
            ("b".into(), 40.0),
        ]
    );
}

#[test]
fn subquery_on_empty_result_is_null() {
    let d = db();
    // Scalar subquery with no rows → NULL → comparison false everywhere.
    let rs = run(&d, "SELECT id FROM t WHERE v > (SELECT v FROM t WHERE v > 999)");
    assert!(rs.rows.is_empty());
}

#[test]
fn in_subquery_against_empty_set() {
    let d = db();
    let rs = run(&d, "SELECT count(*) FROM t WHERE id IN (SELECT id FROM u WHERE w > 9999)");
    assert_eq!(rs.rows[0][0].as_number(), Some(0.0));
    let rs = run(&d, "SELECT count(*) FROM t WHERE id NOT IN (SELECT id FROM u WHERE w > 9999)");
    assert_eq!(rs.rows[0][0].as_number(), Some(5.0));
}

#[test]
fn like_on_numbers_matches_text_form() {
    let d = db();
    let rs = run(&d, "SELECT count(*) FROM t WHERE v LIKE '%0'");
    assert_eq!(rs.rows[0][0].as_number(), Some(5.0)); // all end in 0
    let rs = run(&d, "SELECT count(*) FROM t WHERE v LIKE '1%'");
    assert_eq!(rs.rows[0][0].as_number(), Some(1.0)); // only 10
}

#[test]
fn empty_table_behaviour() {
    let schema = SchemaBuilder::new("e")
        .table("empty", &[("x", ColumnType::Number)])
        .build();
    let mut d = Database::new(schema);
    d.rebuild_index();
    assert_eq!(run(&d, "SELECT count(*) FROM empty").rows[0][0].as_number(), Some(0.0));
    assert!(run(&d, "SELECT x FROM empty").rows.is_empty());
    assert!(run(&d, "SELECT x FROM empty ORDER BY x DESC LIMIT 3").rows.is_empty());
    assert!(run(&d, "SELECT x, count(*) FROM empty GROUP BY x").rows.is_empty());
}
