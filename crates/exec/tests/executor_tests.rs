//! Executor semantics tests against a hand-built pets database (the paper's
//! running example schema) with hand-computed expected results.

use valuenet_exec::{execute, ExecError, ResultSet};
use valuenet_schema::{ColumnType, SchemaBuilder};
use valuenet_sql::parse_select;
use valuenet_storage::{Database, Datum};

/// The paper's Fig. 1 schema: student / has_pet / pet.
fn pets_db() -> Database {
    let schema = SchemaBuilder::new("pets")
        .table(
            "student",
            &[
                ("stu_id", ColumnType::Number),
                ("name", ColumnType::Text),
                ("age", ColumnType::Number),
                ("home_country", ColumnType::Text),
            ],
        )
        .primary_key("student", "stu_id")
        .table("has_pet", &[("stu_id", ColumnType::Number), ("pet_id", ColumnType::Number)])
        .table(
            "pet",
            &[
                ("pet_id", ColumnType::Number),
                ("pet_type", ColumnType::Text),
                ("weight", ColumnType::Number),
            ],
        )
        .primary_key("pet", "pet_id")
        .foreign_key("has_pet", "stu_id", "student", "stu_id")
        .foreign_key("has_pet", "pet_id", "pet", "pet_id")
        .build();
    let mut db = Database::new(schema);
    let student = db.schema().table_by_name("student").unwrap();
    let has_pet = db.schema().table_by_name("has_pet").unwrap();
    let pet = db.schema().table_by_name("pet").unwrap();
    // Students: Alice(21, France), Bob(19, France), Carol(25, Germany),
    //           Dave(30, France), Eve(22, Spain)
    db.insert(student, vec![1.into(), "Alice".into(), 21.into(), "France".into()]);
    db.insert(student, vec![2.into(), "Bob".into(), 19.into(), "France".into()]);
    db.insert(student, vec![3.into(), "Carol".into(), 25.into(), "Germany".into()]);
    db.insert(student, vec![4.into(), "Dave".into(), 30.into(), "France".into()]);
    db.insert(student, vec![5.into(), "Eve".into(), 22.into(), "Spain".into()]);
    // Pets: p1 dog 12.0, p2 cat 4.5, p3 dog 9.0, p4 bird 0.5
    db.insert(pet, vec![1.into(), "dog".into(), 12.0.into()]);
    db.insert(pet, vec![2.into(), "cat".into(), 4.5.into()]);
    db.insert(pet, vec![3.into(), "dog".into(), 9.0.into()]);
    db.insert(pet, vec![4.into(), "bird".into(), 0.5.into()]);
    // Ownership: Alice->p1,p2  Dave->p3  Carol->p4
    db.insert(has_pet, vec![1.into(), 1.into()]);
    db.insert(has_pet, vec![1.into(), 2.into()]);
    db.insert(has_pet, vec![4.into(), 3.into()]);
    db.insert(has_pet, vec![3.into(), 4.into()]);
    db.rebuild_index();
    db
}

fn run(db: &Database, sql: &str) -> ResultSet {
    let stmt = parse_select(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
    execute(db, &stmt).unwrap_or_else(|e| panic!("exec {sql}: {e}"))
}

fn single_number(db: &Database, sql: &str) -> f64 {
    let rs = run(db, sql);
    assert_eq!(rs.rows.len(), 1, "expected one row from {sql}, got {rs}");
    rs.rows[0][0].as_number().unwrap_or_else(|| panic!("not a number: {rs}"))
}

fn text_column(db: &Database, sql: &str) -> Vec<String> {
    run(db, sql).rows.iter().map(|r| r[0].to_string()).collect()
}

#[test]
fn paper_running_example() {
    // "How many pets are owned by French students that are older than 20?"
    // Alice (France, 21) owns 2 pets; Dave (France, 30) owns 1. Bob is 19.
    let db = pets_db();
    let n = single_number(
        &db,
        "SELECT count(*) FROM student AS T1 JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id \
         WHERE T1.home_country = 'France' AND T1.age > 20",
    );
    assert_eq!(n, 3.0);
}

#[test]
fn join_without_on_is_cartesian() {
    // The failure mode the paper attributes to schema-only systems.
    let db = pets_db();
    let n = single_number(&db, "SELECT count(*) FROM student JOIN pet");
    assert_eq!(n, 20.0); // 5 students × 4 pets
}

#[test]
fn three_way_join() {
    let db = pets_db();
    let names = text_column(
        &db,
        "SELECT DISTINCT T1.name FROM student AS T1 \
         JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id \
         JOIN pet AS T3 ON T2.pet_id = T3.pet_id WHERE T3.pet_type = 'dog' \
         ORDER BY T1.name ASC",
    );
    assert_eq!(names, vec!["Alice", "Dave"]);
}

#[test]
fn where_and_or_not() {
    let db = pets_db();
    assert_eq!(
        single_number(
            &db,
            "SELECT count(*) FROM student WHERE home_country = 'Spain' OR home_country = 'Germany'"
        ),
        2.0
    );
    assert_eq!(
        single_number(&db, "SELECT count(*) FROM student WHERE NOT home_country = 'France'"),
        2.0
    );
    assert_eq!(
        single_number(
            &db,
            "SELECT count(*) FROM student WHERE age > 20 AND (home_country = 'France' OR home_country = 'Spain')"
        ),
        3.0
    );
}

#[test]
fn comparison_operators() {
    let db = pets_db();
    assert_eq!(single_number(&db, "SELECT count(*) FROM student WHERE age >= 22"), 3.0);
    assert_eq!(single_number(&db, "SELECT count(*) FROM student WHERE age < 22"), 2.0);
    assert_eq!(single_number(&db, "SELECT count(*) FROM student WHERE age != 21"), 4.0);
    assert_eq!(single_number(&db, "SELECT count(*) FROM pet WHERE weight <= 4.5"), 2.0);
}

#[test]
fn between_and_like() {
    let db = pets_db();
    assert_eq!(
        single_number(&db, "SELECT count(*) FROM student WHERE age BETWEEN 20 AND 25"),
        3.0
    );
    assert_eq!(
        single_number(&db, "SELECT count(*) FROM student WHERE age NOT BETWEEN 20 AND 25"),
        2.0
    );
    // LIKE is case-insensitive, as in SQLite.
    assert_eq!(single_number(&db, "SELECT count(*) FROM student WHERE name LIKE '%a%'"), 3.0);
    assert_eq!(single_number(&db, "SELECT count(*) FROM student WHERE name LIKE 'a%'"), 1.0);
    assert_eq!(
        single_number(&db, "SELECT count(*) FROM student WHERE name NOT LIKE '%e%'"),
        2.0 // Bob, Carol
    );
}

#[test]
fn in_list_and_in_subquery() {
    let db = pets_db();
    assert_eq!(
        single_number(&db, "SELECT count(*) FROM student WHERE home_country IN ('Spain', 'Germany')"),
        2.0
    );
    // Students without pets: Bob, Eve.
    let names = text_column(
        &db,
        "SELECT name FROM student WHERE stu_id NOT IN (SELECT stu_id FROM has_pet) ORDER BY name",
    );
    assert_eq!(names, vec!["Bob", "Eve"]);
}

#[test]
fn scalar_subquery_comparison() {
    let db = pets_db();
    // Average age = (21+19+25+30+22)/5 = 23.4 → older: Carol, Dave.
    let names = text_column(
        &db,
        "SELECT name FROM student WHERE age > (SELECT avg(age) FROM student) ORDER BY name",
    );
    assert_eq!(names, vec!["Carol", "Dave"]);
}

#[test]
fn aggregates() {
    let db = pets_db();
    assert_eq!(single_number(&db, "SELECT count(*) FROM pet"), 4.0);
    assert_eq!(single_number(&db, "SELECT sum(weight) FROM pet"), 26.0);
    assert_eq!(single_number(&db, "SELECT avg(weight) FROM pet"), 6.5);
    assert_eq!(single_number(&db, "SELECT min(weight) FROM pet"), 0.5);
    assert_eq!(single_number(&db, "SELECT max(weight) FROM pet"), 12.0);
    assert_eq!(single_number(&db, "SELECT count(DISTINCT pet_type) FROM pet"), 3.0);
    assert_eq!(single_number(&db, "SELECT count(DISTINCT home_country) FROM student"), 3.0);
}

#[test]
fn min_max_on_text() {
    let db = pets_db();
    let rs = run(&db, "SELECT min(name), max(name) FROM student");
    assert_eq!(rs.rows[0][0].to_string(), "Alice");
    assert_eq!(rs.rows[0][1].to_string(), "Eve");
}

#[test]
fn aggregates_on_empty_input() {
    let db = pets_db();
    assert_eq!(single_number(&db, "SELECT count(*) FROM student WHERE age > 99"), 0.0);
    let rs = run(&db, "SELECT sum(age), avg(age), min(age), max(age) FROM student WHERE age > 99");
    assert!(rs.rows[0].iter().all(Datum::is_null));
}

#[test]
fn group_by_and_having() {
    let db = pets_db();
    let rs = run(
        &db,
        "SELECT home_country, count(*) FROM student GROUP BY home_country ORDER BY count(*) DESC, home_country ASC",
    );
    let got: Vec<(String, f64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].as_number().unwrap()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("France".to_string(), 3.0),
            ("Germany".to_string(), 1.0),
            ("Spain".to_string(), 1.0)
        ]
    );
    let rs = run(
        &db,
        "SELECT home_country FROM student GROUP BY home_country HAVING count(*) > 1",
    );
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0].to_string(), "France");
}

#[test]
fn group_by_with_aggregate_of_join() {
    // Pets per owning student.
    let db = pets_db();
    let rs = run(
        &db,
        "SELECT T1.name, count(*) FROM student AS T1 JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id \
         GROUP BY T1.name ORDER BY count(*) DESC, T1.name ASC",
    );
    let got: Vec<(String, f64)> =
        rs.rows.iter().map(|r| (r[0].to_string(), r[1].as_number().unwrap())).collect();
    assert_eq!(
        got,
        vec![("Alice".to_string(), 2.0), ("Carol".to_string(), 1.0), ("Dave".to_string(), 1.0)]
    );
}

#[test]
fn order_by_and_limit() {
    let db = pets_db();
    let names = text_column(&db, "SELECT name FROM student ORDER BY age DESC LIMIT 2");
    assert_eq!(names, vec!["Dave", "Carol"]);
    let names = text_column(&db, "SELECT name FROM student ORDER BY age ASC LIMIT 1");
    assert_eq!(names, vec!["Bob"]);
    // ORDER BY a column not in the projection.
    let names = text_column(&db, "SELECT name FROM student ORDER BY home_country ASC, age ASC");
    assert_eq!(names, vec!["Bob", "Alice", "Dave", "Carol", "Eve"]);
}

#[test]
fn distinct_projection() {
    let db = pets_db();
    let mut countries = text_column(&db, "SELECT DISTINCT home_country FROM student");
    countries.sort();
    assert_eq!(countries, vec!["France", "Germany", "Spain"]);
}

#[test]
fn star_projections() {
    let db = pets_db();
    let rs = run(&db, "SELECT * FROM pet");
    assert_eq!(rs.rows.len(), 4);
    assert_eq!(rs.rows[0].len(), 3);
    assert_eq!(rs.headers, vec!["pet.pet_id", "pet.pet_type", "pet.weight"]);
    let rs = run(
        &db,
        "SELECT T2.* FROM student AS T1 JOIN has_pet AS T2 ON T1.stu_id = T2.stu_id",
    );
    assert_eq!(rs.rows.len(), 4);
    assert_eq!(rs.rows[0].len(), 2);
}

#[test]
fn union_intersect_except() {
    let db = pets_db();
    // Countries of pet owners: France (Alice, Dave), Germany (Carol).
    let mut u = text_column(
        &db,
        "SELECT home_country FROM student WHERE age > 24 \
         UNION SELECT home_country FROM student WHERE age < 20",
    );
    u.sort();
    assert_eq!(u, vec!["France", "Germany"]); // Dave+Carol ∪ Bob, deduped

    let i = text_column(
        &db,
        "SELECT home_country FROM student WHERE age > 20 \
         INTERSECT SELECT home_country FROM student WHERE age < 22",
    );
    assert_eq!(i, vec!["France"]);

    let e = text_column(
        &db,
        "SELECT home_country FROM student \
         EXCEPT SELECT home_country FROM student WHERE age < 25",
    );
    assert_eq!(e, vec!["Germany"]);
}

#[test]
fn union_all_keeps_duplicates() {
    let db = pets_db();
    let rows = text_column(
        &db,
        "SELECT home_country FROM student WHERE name = 'Alice' \
         UNION ALL SELECT home_country FROM student WHERE name = 'Bob'",
    );
    assert_eq!(rows, vec!["France", "France"]);
}

#[test]
fn nested_superlative_pattern() {
    // "the heaviest pet" via ORDER BY ... LIMIT 1 and via scalar subquery.
    let db = pets_db();
    let a = text_column(&db, "SELECT pet_type FROM pet ORDER BY weight DESC LIMIT 1");
    assert_eq!(a, vec!["dog"]);
    let b = text_column(&db, "SELECT pet_type FROM pet WHERE weight = (SELECT max(weight) FROM pet)");
    assert_eq!(b, vec!["dog"]);
}

#[test]
fn execution_accuracy_comparison_semantics() {
    let db = pets_db();
    // Equivalent queries with different syntax must compare equal.
    let q1 = run(&db, "SELECT name FROM student WHERE age > 20 ORDER BY name ASC");
    let q2 = run(
        &db,
        "SELECT T1.name FROM student AS T1 WHERE T1.age >= 21 ORDER BY T1.name ASC",
    );
    assert!(q1.result_eq(&q2));
    // Different results must not.
    let q3 = run(&db, "SELECT name FROM student WHERE age > 23 ORDER BY name ASC");
    assert!(!q1.result_eq(&q3));
}

#[test]
fn unknown_identifiers_error() {
    let db = pets_db();
    let q = parse_select("SELECT x FROM nosuch").unwrap();
    assert!(matches!(execute(&db, &q), Err(ExecError::UnknownTable(_))));
    let q = parse_select("SELECT nosuch FROM student").unwrap();
    assert!(matches!(execute(&db, &q), Err(ExecError::UnknownColumn(_))));
    let q = parse_select("SELECT T9.name FROM student AS T1").unwrap();
    assert!(matches!(execute(&db, &q), Err(ExecError::UnknownTable(_))));
}

#[test]
fn compound_arity_mismatch_errors() {
    let db = pets_db();
    let q = parse_select("SELECT name, age FROM student UNION SELECT name FROM student").unwrap();
    assert!(matches!(execute(&db, &q), Err(ExecError::ArityMismatch { .. })));
}

#[test]
fn select_without_from() {
    let db = pets_db();
    let rs = run(&db, "SELECT 1");
    assert_eq!(rs.rows, vec![vec![Datum::Int(1)]]);
}

#[test]
fn null_semantics() {
    let schema = SchemaBuilder::new("nulls")
        .table("t", &[("a", ColumnType::Number), ("b", ColumnType::Text)])
        .build();
    let mut db = Database::new(schema);
    let t = db.schema().table_by_name("t").unwrap();
    db.insert(t, vec![1.into(), "x".into()]);
    db.insert(t, vec![Datum::Null, "y".into()]);
    db.insert(t, vec![3.into(), Datum::Null]);
    db.rebuild_index();
    // NULL never satisfies comparisons.
    assert_eq!(single_number(&db, "SELECT count(*) FROM t WHERE a > 0"), 2.0);
    assert_eq!(single_number(&db, "SELECT count(*) FROM t WHERE a = 1 OR a = 3"), 2.0);
    // count(col) skips NULLs, count(*) does not.
    assert_eq!(single_number(&db, "SELECT count(a) FROM t"), 2.0);
    assert_eq!(single_number(&db, "SELECT count(*) FROM t"), 3.0);
    // Aggregates skip NULLs.
    assert_eq!(single_number(&db, "SELECT sum(a) FROM t"), 4.0);
    assert_eq!(single_number(&db, "SELECT avg(a) FROM t"), 2.0);
}

#[test]
fn int_float_comparison_coercion() {
    let db = pets_db();
    // weight is float; compare against int literal.
    assert_eq!(single_number(&db, "SELECT count(*) FROM pet WHERE weight > 4"), 3.0);
    assert_eq!(single_number(&db, "SELECT count(*) FROM pet WHERE weight = 9"), 1.0);
}

#[test]
fn limit_zero_and_large() {
    let db = pets_db();
    assert_eq!(run(&db, "SELECT name FROM student LIMIT 0").rows.len(), 0);
    assert_eq!(run(&db, "SELECT name FROM student LIMIT 100").rows.len(), 5);
}

#[test]
fn order_by_aggregate_in_group() {
    let db = pets_db();
    let rows = text_column(
        &db,
        "SELECT home_country FROM student GROUP BY home_country ORDER BY count(*) DESC LIMIT 1",
    );
    assert_eq!(rows, vec!["France"]);
}
