//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] records every operation of a forward pass as a node. Calling
//! [`Graph::backward`] walks the tape in reverse creation order (which is a
//! valid reverse topological order, because operands must exist before the
//! operation that consumes them) and accumulates gradients into a
//! [`Gradients`] structure keyed by node and by parameter id.
//!
//! Every op builds its output in a single pass into a buffer drawn from the
//! thread-local pool ([`crate::pool`]) — nothing clones its input just to
//! overwrite it. The three hottest op compositions additionally have fused
//! single-node variants ([`Graph::matmul_bias_act`], [`Graph::attn_softmax`],
//! [`Graph::log_softmax_nll`]); each falls back to recording the equivalent
//! unfused chain when fusion is off ([`set_fusion_enabled`]), and both paths
//! are bit-identical in values and gradients (pinned by proptest in
//! `tests/fused_kernels.rs`).

use crate::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};

// Invocation counts for the fused kernels; the FLOP/byte accounting itself
// is inherited from the `tensor.matmul.*` counters because the fused paths
// run the same instrumented matmul kernels internally.
static FUSED_MATMUL_BIAS_ACT: valuenet_obs::Counter =
    valuenet_obs::Counter::new("tensor.fused.matmul_bias_act");
static FUSED_ATTN_SOFTMAX: valuenet_obs::Counter =
    valuenet_obs::Counter::new("tensor.fused.attn_softmax");
static FUSED_LOG_SOFTMAX_NLL: valuenet_obs::Counter =
    valuenet_obs::Counter::new("tensor.fused.log_softmax_nll");
static FUSED_LSTM_GATES: valuenet_obs::Counter =
    valuenet_obs::Counter::new("tensor.fused.lstm_gates");

static FUSION: AtomicBool = AtomicBool::new(true);

/// Globally toggles kernel fusion. When off, the fused entry points record
/// the equivalent unfused op chains — the baseline arm of `bench_speed` and
/// the oracle the proptests compare against.
pub fn set_fusion_enabled(on: bool) {
    FUSION.store(on, Ordering::Relaxed);
}

/// Whether fused kernels are currently recorded (the default).
pub fn fusion_enabled() -> bool {
    FUSION.load(Ordering::Relaxed)
}

/// Activation fused into [`Graph::matmul_bias_act`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity — just the (bias-shifted) matmul.
    None,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
}

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// The recorded operation of a node. Operands are stored as [`Var`]s.
enum Op {
    /// Constant input or trainable parameter (leaf).
    Leaf,
    Add(Var, Var),
    /// `[n,d] + [1,d]` — broadcast the single row over all rows.
    AddBroadcastRow(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[n,d] * [1,d]` element-wise with row broadcast.
    MulBroadcastRow(Var, Var),
    Scale(Var, f32),
    Matmul(Var, Var),
    MatmulTransposedB(Var, Var),
    Transpose(Var),
    Tanh(Var),
    Sigmoid(Var),
    Relu(Var),
    SoftmaxRows(Var),
    LogSoftmaxRows(Var),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    SliceCols(Var, usize, usize),
    SliceRows(Var, usize, usize),
    SumAll(Var),
    MeanAll(Var),
    /// Select rows of an embedding table; gradient is a scatter-add.
    Gather(Var, Vec<usize>),
    /// Mean negative log likelihood: operand holds per-row log-probabilities,
    /// the vector holds one target class per row.
    NllLoss(Var, Vec<usize>),
    /// Element-wise multiply by a fixed mask (inverted-dropout scaling baked in).
    Dropout(Var, Vec<f32>),
    /// Per-row layer normalisation (no affine; compose gain/bias separately).
    LayerNormRows(Var, f32),
    /// Fused `act(a @ w + bias)` with optional row-broadcast bias.
    MatmulBiasAct(Var, Var, Option<Var>, Activation),
    /// Fused attention weights `softmax_rows(scale·(q @ keysᵀ) + mask)`.
    AttnSoftmax { q: Var, keys: Var, scale: f32, mask: Option<Var> },
    /// Fused `nll_loss(log_softmax_rows(x), targets)`; the per-row
    /// log-sum-exp is cached so backward never materialises the
    /// `rows × classes` log-probability matrix.
    LogSoftmaxNll { x: Var, targets: Vec<usize>, lse: Vec<f32> },
    /// Fused LSTM cell update `c = σ(z_f)·c_prev + σ(z_i)·tanh(z_g)` over
    /// gate pre-activations `z = [i|f|g|o]` of shape `[B, 4h]`. Gate values
    /// are recomputed in backward (deterministic, so bit-identical to the
    /// cached intermediates of the unfused chain).
    LstmCellGate { z: Var, c_prev: Var },
    /// Fused LSTM output gate `h = σ(z_o) · tanh(c)`.
    LstmOutGate { z: Var, c: Var },
}

struct Node {
    value: Tensor,
    op: Op,
    needs_grad: bool,
    param_id: Option<usize>,
}

/// Gradients produced by [`Graph::backward`].
pub struct Gradients {
    by_node: Vec<Option<Tensor>>,
    /// `(param_id, node index)` pairs, sorted by id (stably, so nodes of one
    /// id keep tape order) — [`Gradients::for_param`] binary-searches here
    /// instead of scanning every registration.
    params: Vec<(usize, usize)>,
}

impl Gradients {
    /// Gradient of the loss with respect to node `v`, if it was computed.
    pub fn for_var(&self, v: Var) -> Option<&Tensor> {
        self.by_node.get(v.0).and_then(|g| g.as_ref())
    }

    /// Gradient for the parameter registered under `param_id`.
    ///
    /// If the same parameter was used through several [`Graph::param`] nodes,
    /// their gradients are summed (in tape order, so the accumulation is
    /// deterministic).
    pub fn for_param(&self, param_id: usize) -> Option<Tensor> {
        let start = self.params.partition_point(|&(pid, _)| pid < param_id);
        let mut acc: Option<Tensor> = None;
        for &(pid, node) in &self.params[start..] {
            if pid != param_id {
                break;
            }
            if let Some(g) = &self.by_node[node] {
                match &mut acc {
                    Some(a) => a.add_assign(g),
                    None => acc = Some(g.clone()),
                }
            }
        }
        acc
    }

    /// Iterates over `(param_id, node gradient)` pairs for every parameter
    /// node that received a gradient. The same id may appear more than once.
    pub fn param_grads(&self) -> impl Iterator<Item = (usize, &Tensor)> {
        self.params
            .iter()
            .filter_map(move |&(pid, node)| self.by_node[node].as_ref().map(|g| (pid, g)))
    }
}

/// An autodiff tape. See the crate-level documentation for an example.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    inference: bool,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new(), inference: false }
    }

    /// Marks this tape as inference-only. Layers may then bypass the tape
    /// for parameter applications (pre-packed / quantized weight kernels
    /// feeding [`Graph::input`] leaves) since no backward pass will run.
    /// Training tapes never set this, so training stays on the recorded
    /// f32 path.
    pub fn set_inference(&mut self, on: bool) {
        self.inference = on;
    }

    /// True when this tape was marked inference-only.
    pub fn inference_mode(&self) -> bool {
        self.inference
    }

    /// Clears the tape for reuse, keeping the node vector's capacity.
    ///
    /// Dropping the recorded nodes files every forward buffer back into the
    /// thread-local pool — this call is the per-sample recycle point for a
    /// long-lived graph (see `trainer.rs`).
    pub fn reset(&mut self) {
        self.nodes.clear();
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool, param_id: Option<usize>) -> Var {
        self.nodes.push(Node { value, op, needs_grad, param_id });
        Var(self.nodes.len() - 1)
    }

    fn any_needs_grad(&self, vars: &[Var]) -> bool {
        vars.iter().any(|v| self.nodes[v.0].needs_grad)
    }

    /// Registers a constant input (no gradient flows into it).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false, None)
    }

    /// Registers a trainable parameter identified by `param_id`. The
    /// gradient for this node is retrievable via [`Gradients::for_param`].
    pub fn param(&mut self, t: Tensor, param_id: usize) -> Var {
        self.push(t, Op::Leaf, true, Some(param_id))
    }

    /// Element-wise sum of two same-shape tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, Op::Add(a, b), ng, None)
    }

    /// `[n,d] + [1,d]`: adds row-vector `b` to every row of `a`.
    pub fn add_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(tb.rows(), 1, "add_broadcast_row: rhs must be a row vector");
        assert_eq!(ta.cols(), tb.cols(), "add_broadcast_row: column mismatch");
        let mut data = crate::pool::take(ta.len());
        for r in 0..ta.rows() {
            data.extend(ta.row(r).iter().zip(tb.row(0)).map(|(&x, &y)| x + y));
        }
        let out = Tensor::from_vec(ta.rows(), ta.cols(), data);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(out, Op::AddBroadcastRow(a, b), ng, None)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, Op::Sub(a, b), ng, None)
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, Op::Mul(a, b), ng, None)
    }

    /// `[n,d] * [1,d]` element-wise with row broadcast (e.g. layer-norm gain).
    pub fn mul_broadcast_row(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(tb.rows(), 1, "mul_broadcast_row: rhs must be a row vector");
        assert_eq!(ta.cols(), tb.cols(), "mul_broadcast_row: column mismatch");
        let mut data = crate::pool::take(ta.len());
        for r in 0..ta.rows() {
            data.extend(ta.row(r).iter().zip(tb.row(0)).map(|(&x, &y)| x * y));
        }
        let out = Tensor::from_vec(ta.rows(), ta.cols(), data);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(out, Op::MulBroadcastRow(a, b), ng, None)
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: Var, k: f32) -> Var {
        let v = self.value(a).map(|x| x * k);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, Op::Scale(a, k), ng, None)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, Op::Matmul(a, b), ng, None)
    }

    /// `A·Bᵀ` without materialising a transpose node. Bit-identical to
    /// `transpose` followed by `matmul` (every kernel involved folds each
    /// output element over the shared dimension in the same ascending
    /// order), but the tape holds one node instead of two, and for narrow
    /// left operands the kernel reads `B`'s rows directly instead of
    /// packing a transposed copy — the pattern of per-step pointer scores
    /// against a fixed item matrix.
    pub fn matmul_transposed_b(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_transposed_b(self.value(b));
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, Op::MatmulTransposedB(a, b), ng, None)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        let ng = self.any_needs_grad(&[a]);
        self.push(v, Op::Transpose(a), ng, None)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, Op::Tanh(a), ng, None)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.any_needs_grad(&[a]);
        self.push(v, Op::Sigmoid(a), ng, None)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        let ng = self.any_needs_grad(&[a]);
        self.push(v, Op::Relu(a), ng, None)
    }

    /// Numerically stable softmax applied independently to each row.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let mut data = crate::pool::take(t.len());
        for r in 0..t.rows() {
            let src = t.row(r);
            let max = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let start = data.len();
            let mut sum = 0.0;
            for &x in src {
                let e = (x - max).exp();
                sum += e;
                data.push(e);
            }
            for x in &mut data[start..] {
                *x /= sum;
            }
        }
        let out = Tensor::from_vec(t.rows(), t.cols(), data);
        let ng = self.any_needs_grad(&[a]);
        self.push(out, Op::SoftmaxRows(a), ng, None)
    }

    /// Numerically stable log-softmax applied independently to each row.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let mut data = crate::pool::take(t.len());
        for r in 0..t.rows() {
            let src = t.row(r);
            let max = src.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + src.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
            data.extend(src.iter().map(|&x| x - lse));
        }
        let out = Tensor::from_vec(t.rows(), t.cols(), data);
        let ng = self.any_needs_grad(&[a]);
        self.push(out, Op::LogSoftmaxRows(a), ng, None)
    }

    /// Horizontal concatenation: all operands share the row count.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: no operands");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        for &p in parts {
            assert_eq!(self.value(p).rows(), rows, "concat_cols: row mismatch");
        }
        let mut data = crate::pool::take(rows * total);
        for r in 0..rows {
            for &p in parts {
                data.extend_from_slice(self.value(p).row(r));
            }
        }
        let out = Tensor::from_vec(rows, total, data);
        let ng = self.any_needs_grad(parts);
        self.push(out, Op::ConcatCols(parts.to_vec()), ng, None)
    }

    /// Vertical concatenation: all operands share the column count.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows: no operands");
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut data = crate::pool::take(total * cols);
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.cols(), cols, "concat_rows: column mismatch");
            data.extend_from_slice(t.as_slice());
        }
        let out = Tensor::from_vec(total, cols, data);
        let ng = self.any_needs_grad(parts);
        self.push(out, Op::ConcatRows(parts.to_vec()), ng, None)
    }

    /// Columns `c0..c1` of `a`.
    pub fn slice_cols(&mut self, a: Var, c0: usize, c1: usize) -> Var {
        let t = self.value(a);
        assert!(c0 < c1 && c1 <= t.cols(), "slice_cols: bad range {c0}..{c1}");
        let mut data = crate::pool::take(t.rows() * (c1 - c0));
        for r in 0..t.rows() {
            data.extend_from_slice(&t.row(r)[c0..c1]);
        }
        let out = Tensor::from_vec(t.rows(), c1 - c0, data);
        let ng = self.any_needs_grad(&[a]);
        self.push(out, Op::SliceCols(a, c0, c1), ng, None)
    }

    /// Rows `r0..r1` of `a`.
    pub fn slice_rows(&mut self, a: Var, r0: usize, r1: usize) -> Var {
        let t = self.value(a);
        assert!(r0 < r1 && r1 <= t.rows(), "slice_rows: bad range {r0}..{r1}");
        let mut data = crate::pool::take((r1 - r0) * t.cols());
        data.extend_from_slice(&t.as_slice()[r0 * t.cols()..r1 * t.cols()]);
        let out = Tensor::from_vec(r1 - r0, t.cols(), data);
        let ng = self.any_needs_grad(&[a]);
        self.push(out, Op::SliceRows(a, r0, r1), ng, None)
    }

    /// Sum of all elements, as a `1 × 1` tensor.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.value(a).sum());
        let ng = self.any_needs_grad(&[a]);
        self.push(v, Op::SumAll(a), ng, None)
    }

    /// Mean of all elements, as a `1 × 1` tensor.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let v = Tensor::scalar(t.sum() / t.len() as f32);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, Op::MeanAll(a), ng, None)
    }

    /// Gathers rows `indices` from `table` (embedding lookup).
    pub fn gather_rows(&mut self, table: Var, indices: &[usize]) -> Var {
        let t = self.value(table);
        let mut data = crate::pool::take(indices.len() * t.cols());
        for &idx in indices {
            assert!(idx < t.rows(), "gather_rows: index {idx} out of {} rows", t.rows());
            data.extend_from_slice(t.row(idx));
        }
        let out = Tensor::from_vec(indices.len(), t.cols(), data);
        let ng = self.any_needs_grad(&[table]);
        self.push(out, Op::Gather(table, indices.to_vec()), ng, None)
    }

    /// Mean negative log-likelihood over rows of `log_probs` with one target
    /// class per row. Returns a `1 × 1` loss tensor.
    pub fn nll_loss(&mut self, log_probs: Var, targets: &[usize]) -> Var {
        let t = self.value(log_probs);
        assert_eq!(t.rows(), targets.len(), "nll_loss: {} rows vs {} targets", t.rows(), targets.len());
        let mut loss = 0.0;
        for (r, &c) in targets.iter().enumerate() {
            assert!(c < t.cols(), "nll_loss: target {c} out of {} classes", t.cols());
            loss -= t.get(r, c);
        }
        let v = Tensor::scalar(loss / targets.len() as f32);
        let ng = self.any_needs_grad(&[log_probs]);
        self.push(v, Op::NllLoss(log_probs, targets.to_vec()), ng, None)
    }

    /// Inverted dropout with keep probability `1 - p`. The mask is sampled by
    /// the caller so the graph stays deterministic; entries must be either
    /// `0.0` or `1 / (1 - p)`.
    pub fn dropout(&mut self, a: Var, mask: Vec<f32>) -> Var {
        let t = self.value(a);
        assert_eq!(mask.len(), t.len(), "dropout: mask length mismatch");
        let mut data = crate::pool::take(t.len());
        data.extend(t.as_slice().iter().zip(&mask).map(|(&x, &m)| x * m));
        let out = Tensor::from_vec(t.rows(), t.cols(), data);
        let ng = self.any_needs_grad(&[a]);
        self.push(out, Op::Dropout(a, mask), ng, None)
    }

    /// Per-row layer normalisation (zero mean, unit variance, no affine).
    pub fn layer_norm_rows(&mut self, a: Var, eps: f32) -> Var {
        let t = self.value(a);
        let mut data = crate::pool::take(t.len());
        for r in 0..t.rows() {
            let src = t.row(r);
            let n = src.len() as f32;
            let mean = src.iter().sum::<f32>() / n;
            let var = src.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
            let inv = 1.0 / (var + eps).sqrt();
            data.extend(src.iter().map(|&x| (x - mean) * inv));
        }
        let out = Tensor::from_vec(t.rows(), t.cols(), data);
        let ng = self.any_needs_grad(&[a]);
        self.push(out, Op::LayerNormRows(a, eps), ng, None)
    }

    /// Fused `act(a @ w + bias)` — one node instead of the three-node
    /// matmul / add_broadcast_row / activation chain, so the bias-shifted
    /// pre-activation never materialises. With fusion off
    /// ([`set_fusion_enabled`]) the unfused composition is recorded instead;
    /// both paths are bit-identical in values and gradients.
    pub fn matmul_bias_act(&mut self, a: Var, w: Var, bias: Option<Var>, act: Activation) -> Var {
        if !fusion_enabled() {
            let mut y = self.matmul(a, w);
            if let Some(b) = bias {
                y = self.add_broadcast_row(y, b);
            }
            return match act {
                Activation::None => y,
                Activation::Tanh => self.tanh(y),
                Activation::Sigmoid => self.sigmoid(y),
                Activation::Relu => self.relu(y),
            };
        }
        FUSED_MATMUL_BIAS_ACT.add(1);
        let mut out = self.value(a).matmul(self.value(w));
        if let Some(b) = bias {
            let tb = self.value(b);
            assert_eq!(tb.rows(), 1, "matmul_bias_act: bias must be a row vector");
            assert_eq!(out.cols(), tb.cols(), "matmul_bias_act: bias column mismatch");
            let bias_row = tb.row(0);
            let lvl = crate::simd::level();
            for r in 0..out.rows() {
                crate::simd::add_assign_at(lvl, out.row_mut(r), bias_row);
            }
        }
        apply_activation(&mut out, act);
        let ng = match bias {
            Some(b) => self.any_needs_grad(&[a, w, b]),
            None => self.any_needs_grad(&[a, w]),
        };
        self.push(out, Op::MatmulBiasAct(a, w, bias, act), ng, None)
    }

    /// Fused scaled dot-product attention weights:
    /// `softmax_rows(scale · (q @ keysᵀ) + mask)` as one node. The transpose
    /// is never a tape node (the kernel packs `keysᵀ` internally) and the
    /// raw/scaled score matrices never materialise. `mask`, when present,
    /// must match the score shape (`q.rows × keys.rows`; 0 / −1e9 entries).
    /// The context vector is a separate [`Graph::matmul`] with the value
    /// rows, so callers whose keys differ from their values fuse equally.
    pub fn attn_softmax(&mut self, q: Var, keys: Var, scale: f32, mask: Option<Var>) -> Var {
        if !fusion_enabled() {
            let kt = self.transpose(keys);
            let raw = self.matmul(q, kt);
            let mut s = self.scale(raw, scale);
            if let Some(m) = mask {
                s = self.add(s, m);
            }
            return self.softmax_rows(s);
        }
        FUSED_ATTN_SOFTMAX.add(1);
        let mut out = self.value(q).matmul_transposed_b(self.value(keys));
        crate::simd::scale(out.as_mut_slice(), scale);
        if let Some(m) = mask {
            let tm = self.value(m);
            assert_eq!(out.shape(), tm.shape(), "attn_softmax: mask shape mismatch");
            crate::simd::add_assign(out.as_mut_slice(), tm.as_slice());
        }
        for r in 0..out.rows() {
            softmax_row(out.row_mut(r));
        }
        let ng = match mask {
            Some(m) => self.any_needs_grad(&[q, keys, m]),
            None => self.any_needs_grad(&[q, keys]),
        };
        self.push(out, Op::AttnSoftmax { q, keys, scale, mask }, ng, None)
    }

    /// Fused `nll_loss(log_softmax_rows(x), targets)` as a single scalar
    /// node. Only the per-row log-sum-exp is kept for backward — the
    /// `rows × classes` log-probability matrix of the unfused pair is never
    /// allocated.
    pub fn log_softmax_nll(&mut self, x: Var, targets: &[usize]) -> Var {
        if !fusion_enabled() {
            let lp = self.log_softmax_rows(x);
            return self.nll_loss(lp, targets);
        }
        FUSED_LOG_SOFTMAX_NLL.add(1);
        let t = self.value(x);
        assert_eq!(
            t.rows(),
            targets.len(),
            "log_softmax_nll: {} rows vs {} targets",
            t.rows(),
            targets.len()
        );
        let mut lse = Vec::with_capacity(t.rows());
        let mut loss = 0.0f32;
        for (r, &c) in targets.iter().enumerate() {
            assert!(c < t.cols(), "log_softmax_nll: target {c} out of {} classes", t.cols());
            let row = t.row(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let l = max + row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
            loss -= row[c] - l;
            lse.push(l);
        }
        let v = Tensor::scalar(loss / targets.len() as f32);
        let ng = self.any_needs_grad(&[x]);
        self.push(v, Op::LogSoftmaxNll { x, targets: targets.to_vec(), lse }, ng, None)
    }

    /// Fused LSTM gate math: consumes the gate pre-activations
    /// `z = [i|f|g|o]` (`[B, 4h]`) and the previous cell state (`[B, h]`),
    /// returns `(h, c)` — two nodes instead of the thirteen-node
    /// slice/activate/multiply/add chain, with no intermediate gate tensors
    /// on the tape. With fusion off the unfused chain is recorded instead;
    /// values and gradients are bit-identical either way (gates are
    /// recomputed in backward with the same scalar expressions the unfused
    /// ops use; pinned by proptest in `tests/fused_kernels.rs`).
    pub fn lstm_gates(&mut self, z: Var, c_prev: Var) -> (Var, Var) {
        let h = self.value(c_prev).cols();
        let rows = self.value(c_prev).rows();
        assert_eq!(self.value(z).cols(), 4 * h, "lstm_gates: z must be [B, 4h]");
        assert_eq!(self.value(z).rows(), rows, "lstm_gates: batch mismatch");
        if !fusion_enabled() {
            let i_g = self.slice_cols(z, 0, h);
            let f_g = self.slice_cols(z, h, 2 * h);
            let g_g = self.slice_cols(z, 2 * h, 3 * h);
            let o_g = self.slice_cols(z, 3 * h, 4 * h);
            let i = self.sigmoid(i_g);
            let f = self.sigmoid(f_g);
            let cand = self.tanh(g_g);
            let o = self.sigmoid(o_g);
            let fc = self.mul(f, c_prev);
            let ic = self.mul(i, cand);
            let c = self.add(fc, ic);
            let tc = self.tanh(c);
            let h_out = self.mul(o, tc);
            return (h_out, c);
        }
        FUSED_LSTM_GATES.add(1);
        let ng = self.any_needs_grad(&[z, c_prev]);
        let (h_t, c_t) = lstm_gates_eval(self.value(z), self.value(c_prev));
        let c = self.push(c_t, Op::LstmCellGate { z, c_prev }, ng, None);
        let h_out = self.push(h_t, Op::LstmOutGate { z, c }, ng, None);
        (h_out, c)
    }

    /// Runs the backward pass from `loss` (which must be `1 × 1`) and returns
    /// all gradients. The tape is left intact, so values remain readable.
    pub fn backward(&mut self, loss: Var) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be scalar, got {:?}",
            self.value(loss).shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(g) = grads[i].take() else { continue };
            self.accumulate_parents(i, &g, &mut grads);
            grads[i] = Some(g);
        }

        let mut params: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.param_id.map(|pid| (pid, i)))
            .collect();
        // Stable sort: `for_param` binary-searches by id, and same-id nodes
        // keep tape order so repeated-registration sums accumulate in the
        // same order as before.
        params.sort_by_key(|&(pid, _)| pid);
        Gradients { by_node: grads, params }
    }

    /// Adds the contribution of node `i` (with output gradient `g`) to the
    /// gradients of its operands.
    fn accumulate_parents(&self, i: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let add_to = |grads: &mut [Option<Tensor>], v: Var, delta: Tensor| {
            match &mut grads[v.0] {
                Some(acc) => acc.add_assign(&delta),
                slot @ None => *slot = Some(delta),
            }
        };
        match &self.nodes[i].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, g.clone());
                }
                if self.nodes[b.0].needs_grad {
                    add_to(grads, *b, g.clone());
                }
            }
            Op::AddBroadcastRow(a, b) => {
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, g.clone());
                }
                if self.nodes[b.0].needs_grad {
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            gb.set(0, c, gb.get(0, c) + g.get(r, c));
                        }
                    }
                    add_to(grads, *b, gb);
                }
            }
            Op::Sub(a, b) => {
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, g.clone());
                }
                if self.nodes[b.0].needs_grad {
                    add_to(grads, *b, g.map(|x| -x));
                }
            }
            Op::Mul(a, b) => {
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, g.zip(&self.nodes[b.0].value, |gv, bv| gv * bv));
                }
                if self.nodes[b.0].needs_grad {
                    add_to(grads, *b, g.zip(&self.nodes[a.0].value, |gv, av| gv * av));
                }
            }
            Op::MulBroadcastRow(a, b) => {
                let tb = &self.nodes[b.0].value;
                let ta = &self.nodes[a.0].value;
                if self.nodes[a.0].needs_grad {
                    let mut ga = g.clone();
                    for r in 0..ga.rows() {
                        for c in 0..ga.cols() {
                            let v = ga.get(r, c) * tb.get(0, c);
                            ga.set(r, c, v);
                        }
                    }
                    add_to(grads, *a, ga);
                }
                if self.nodes[b.0].needs_grad {
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            gb.set(0, c, gb.get(0, c) + g.get(r, c) * ta.get(r, c));
                        }
                    }
                    add_to(grads, *b, gb);
                }
            }
            Op::Scale(a, k) => {
                if self.nodes[a.0].needs_grad {
                    let k = *k;
                    add_to(grads, *a, g.map(|x| x * k));
                }
            }
            Op::Matmul(a, b) => {
                // dL/dA = G·Bᵀ and dL/dB = Aᵀ·G, via the transposed-operand
                // kernels so neither transpose is materialised.
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, g.matmul_transposed_b(&self.nodes[b.0].value));
                }
                if self.nodes[b.0].needs_grad {
                    add_to(grads, *b, self.nodes[a.0].value.matmul_transposed_a(g));
                }
            }
            Op::MatmulTransposedB(a, b) => {
                // Y = A·Bᵀ, so dL/dA = G·B and dL/dB = Gᵀ·A.
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, g.matmul(&self.nodes[b.0].value));
                }
                if self.nodes[b.0].needs_grad {
                    add_to(grads, *b, g.matmul_transposed_a(&self.nodes[a.0].value));
                }
            }
            Op::Transpose(a) => {
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, g.transpose());
                }
            }
            Op::Tanh(a) => {
                if self.nodes[a.0].needs_grad {
                    let y = &self.nodes[i].value;
                    add_to(grads, *a, g.zip(y, |gv, yv| gv * (1.0 - yv * yv)));
                }
            }
            Op::Sigmoid(a) => {
                if self.nodes[a.0].needs_grad {
                    let y = &self.nodes[i].value;
                    add_to(grads, *a, g.zip(y, |gv, yv| gv * yv * (1.0 - yv)));
                }
            }
            Op::Relu(a) => {
                if self.nodes[a.0].needs_grad {
                    let x = &self.nodes[a.0].value;
                    add_to(grads, *a, g.zip(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 }));
                }
            }
            Op::SoftmaxRows(a) => {
                if self.nodes[a.0].needs_grad {
                    let y = &self.nodes[i].value;
                    let mut gx = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let dot: f32 =
                            y.row(r).iter().zip(g.row(r)).map(|(&yv, &gv)| yv * gv).sum();
                        for c in 0..y.cols() {
                            gx.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    add_to(grads, *a, gx);
                }
            }
            Op::LogSoftmaxRows(a) => {
                if self.nodes[a.0].needs_grad {
                    let y = &self.nodes[i].value; // y = log softmax(x)
                    let mut gx = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gsum: f32 = g.row(r).iter().sum();
                        for c in 0..y.cols() {
                            gx.set(r, c, g.get(r, c) - y.get(r, c).exp() * gsum);
                        }
                    }
                    add_to(grads, *a, gx);
                }
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let cols = self.nodes[p.0].value.cols();
                    if self.nodes[p.0].needs_grad {
                        let mut data = crate::pool::take(g.rows() * cols);
                        for r in 0..g.rows() {
                            data.extend_from_slice(&g.row(r)[off..off + cols]);
                        }
                        add_to(grads, p, Tensor::from_vec(g.rows(), cols, data));
                    }
                    off += cols;
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for &p in parts {
                    let rows = self.nodes[p.0].value.rows();
                    if self.nodes[p.0].needs_grad {
                        let mut data = crate::pool::take(rows * g.cols());
                        data.extend_from_slice(
                            &g.as_slice()[off * g.cols()..(off + rows) * g.cols()],
                        );
                        add_to(grads, p, Tensor::from_vec(rows, g.cols(), data));
                    }
                    off += rows;
                }
            }
            Op::SliceCols(a, c0, _c1) => {
                if self.nodes[a.0].needs_grad {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Tensor::zeros(src.rows(), src.cols());
                    for r in 0..g.rows() {
                        ga.row_mut(r)[*c0..*c0 + g.cols()].copy_from_slice(g.row(r));
                    }
                    add_to(grads, *a, ga);
                }
            }
            Op::SliceRows(a, r0, _r1) => {
                if self.nodes[a.0].needs_grad {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Tensor::zeros(src.rows(), src.cols());
                    for r in 0..g.rows() {
                        ga.row_mut(r0 + r).copy_from_slice(g.row(r));
                    }
                    add_to(grads, *a, ga);
                }
            }
            Op::SumAll(a) => {
                if self.nodes[a.0].needs_grad {
                    let src = &self.nodes[a.0].value;
                    let gv = g.scalar_value();
                    add_to(grads, *a, Tensor::full(src.rows(), src.cols(), gv));
                }
            }
            Op::MeanAll(a) => {
                if self.nodes[a.0].needs_grad {
                    let src = &self.nodes[a.0].value;
                    let gv = g.scalar_value() / src.len() as f32;
                    add_to(grads, *a, Tensor::full(src.rows(), src.cols(), gv));
                }
            }
            Op::Gather(table, indices) => {
                if self.nodes[table.0].needs_grad {
                    let t = &self.nodes[table.0].value;
                    let mut gt = Tensor::zeros(t.rows(), t.cols());
                    for (r, &idx) in indices.iter().enumerate() {
                        for c in 0..t.cols() {
                            gt.set(idx, c, gt.get(idx, c) + g.get(r, c));
                        }
                    }
                    add_to(grads, *table, gt);
                }
            }
            Op::NllLoss(lp, targets) => {
                if self.nodes[lp.0].needs_grad {
                    let t = &self.nodes[lp.0].value;
                    let gv = g.scalar_value() / targets.len() as f32;
                    let mut glp = Tensor::zeros(t.rows(), t.cols());
                    for (r, &c) in targets.iter().enumerate() {
                        glp.set(r, c, -gv);
                    }
                    add_to(grads, *lp, glp);
                }
            }
            Op::Dropout(a, mask) => {
                if self.nodes[a.0].needs_grad {
                    let mut ga = g.clone();
                    for (x, &m) in ga.as_mut_slice().iter_mut().zip(mask) {
                        *x *= m;
                    }
                    add_to(grads, *a, ga);
                }
            }
            Op::MatmulBiasAct(a, w, bias, act) => {
                // Chain through the activation first: dz = g ⊙ act'(y). All
                // derivatives are expressed via the stored output y, exactly
                // as the unfused arms do (for ReLU, y > 0 ⟺ x > 0, so the
                // gradient matches the pre-activation test bit for bit).
                let y = &self.nodes[i].value;
                let dz_owned;
                let dz: &Tensor = match act {
                    Activation::None => g,
                    Activation::Tanh => {
                        dz_owned = g.zip(y, |gv, yv| gv * (1.0 - yv * yv));
                        &dz_owned
                    }
                    Activation::Sigmoid => {
                        dz_owned = g.zip(y, |gv, yv| gv * yv * (1.0 - yv));
                        &dz_owned
                    }
                    Activation::Relu => {
                        dz_owned = g.zip(y, |gv, yv| if yv > 0.0 { gv } else { 0.0 });
                        &dz_owned
                    }
                };
                if self.nodes[a.0].needs_grad {
                    add_to(grads, *a, dz.matmul_transposed_b(&self.nodes[w.0].value));
                }
                if self.nodes[w.0].needs_grad {
                    add_to(grads, *w, self.nodes[a.0].value.matmul_transposed_a(dz));
                }
                if let Some(b) = bias {
                    if self.nodes[b.0].needs_grad {
                        let mut gb = Tensor::zeros(1, dz.cols());
                        for r in 0..dz.rows() {
                            for c in 0..dz.cols() {
                                gb.set(0, c, gb.get(0, c) + dz.get(r, c));
                            }
                        }
                        add_to(grads, *b, gb);
                    }
                }
            }
            Op::AttnSoftmax { q, keys, scale, mask } => {
                // Softmax backward per row (yᵣ ⊙ (gᵣ − yᵣ·gᵣ)), identical to
                // the SoftmaxRows arm; the mask taps it unscaled and the
                // score gradient additionally chains the 1/√d scale.
                let y = &self.nodes[i].value;
                let (rows, cols) = y.shape();
                let mut gs = Tensor::zeros(rows, cols);
                for r in 0..rows {
                    let dot: f32 = y.row(r).iter().zip(g.row(r)).map(|(&yv, &gv)| yv * gv).sum();
                    for c in 0..cols {
                        gs.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                if let Some(m) = mask {
                    if self.nodes[m.0].needs_grad {
                        add_to(grads, *m, gs.clone());
                    }
                }
                let k = *scale;
                let gscaled = gs.map(|x| x * k);
                if self.nodes[q.0].needs_grad {
                    add_to(grads, *q, gscaled.matmul(&self.nodes[keys.0].value));
                }
                if self.nodes[keys.0].needs_grad {
                    add_to(grads, *keys, gscaled.matmul_transposed_a(&self.nodes[q.0].value));
                }
            }
            Op::LogSoftmaxNll { x, targets, lse } => {
                if self.nodes[x.0].needs_grad {
                    let t = &self.nodes[x.0].value;
                    let gv = g.scalar_value() / targets.len() as f32;
                    let mut gx = Tensor::zeros(t.rows(), t.cols());
                    for r in 0..t.rows() {
                        let l = lse[r];
                        let src = t.row(r);
                        let out = gx.row_mut(r);
                        for (o, &xv) in out.iter_mut().zip(src) {
                            *o = (xv - l).exp() * gv;
                        }
                        out[targets[r]] -= gv;
                    }
                    add_to(grads, *x, gx);
                }
            }
            Op::LstmCellGate { z, c_prev } => {
                // g is dL/dc. Gate values are recomputed from z — the same
                // scalar expressions as the forward pass, so every factor is
                // bit-identical to the unfused chain's cached node values,
                // and each product below mirrors one unfused backward zip
                // (mul backward, then sigmoid/tanh backward) term for term.
                let tz = &self.nodes[z.0].value;
                let tcp = &self.nodes[c_prev.0].value;
                let (rows, h) = tcp.shape();
                if self.nodes[z.0].needs_grad {
                    let mut dz = Tensor::zeros(rows, 4 * h);
                    for r in 0..rows {
                        let zr = tz.row(r);
                        let cp = tcp.row(r);
                        let gr = g.row(r);
                        let out = dz.row_mut(r);
                        for j in 0..h {
                            let iv = sigmoid(zr[j]);
                            let fv = sigmoid(zr[h + j]);
                            let gv_ = zr[2 * h + j].tanh();
                            let di = gr[j] * gv_;
                            let df = gr[j] * cp[j];
                            let dcand = gr[j] * iv;
                            out[j] = di * iv * (1.0 - iv);
                            out[h + j] = df * fv * (1.0 - fv);
                            out[2 * h + j] = dcand * (1.0 - gv_ * gv_);
                        }
                    }
                    add_to(grads, *z, dz);
                }
                if self.nodes[c_prev.0].needs_grad {
                    let mut dcp = Tensor::zeros(rows, h);
                    for r in 0..rows {
                        let zr = tz.row(r);
                        let gr = g.row(r);
                        let out = dcp.row_mut(r);
                        for j in 0..h {
                            out[j] = gr[j] * sigmoid(zr[h + j]);
                        }
                    }
                    add_to(grads, *c_prev, dcp);
                }
            }
            Op::LstmOutGate { z, c } => {
                // g is dL/dh with h = σ(z_o)·tanh(c).
                let tz = &self.nodes[z.0].value;
                let tc = &self.nodes[c.0].value;
                let (rows, h) = tc.shape();
                if self.nodes[z.0].needs_grad {
                    let mut dz = Tensor::zeros(rows, 4 * h);
                    for r in 0..rows {
                        let zr = tz.row(r);
                        let cr = tc.row(r);
                        let gr = g.row(r);
                        let out = dz.row_mut(r);
                        for j in 0..h {
                            let ov = sigmoid(zr[3 * h + j]);
                            let do_ = gr[j] * cr[j].tanh();
                            out[3 * h + j] = do_ * ov * (1.0 - ov);
                        }
                    }
                    add_to(grads, *z, dz);
                }
                if self.nodes[c.0].needs_grad {
                    let mut dc = Tensor::zeros(rows, h);
                    for r in 0..rows {
                        let zr = tz.row(r);
                        let cr = tc.row(r);
                        let gr = g.row(r);
                        let out = dc.row_mut(r);
                        for j in 0..h {
                            let tcv = cr[j].tanh();
                            out[j] = gr[j] * sigmoid(zr[3 * h + j]) * (1.0 - tcv * tcv);
                        }
                    }
                    add_to(grads, *c, dc);
                }
            }
            Op::LayerNormRows(a, eps) => {
                if self.nodes[a.0].needs_grad {
                    let x = &self.nodes[a.0].value;
                    let y = &self.nodes[i].value;
                    let n = x.cols() as f32;
                    let mut gx = Tensor::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        let mean = x.row(r).iter().sum::<f32>() / n;
                        let var =
                            x.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
                        let inv = 1.0 / (var + eps).sqrt();
                        let gmean: f32 = g.row(r).iter().sum::<f32>() / n;
                        let gydot: f32 = g
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&gv, &yv)| gv * yv)
                            .sum::<f32>()
                            / n;
                        for c in 0..x.cols() {
                            gx.set(r, c, inv * (g.get(r, c) - gmean - y.get(r, c) * gydot));
                        }
                    }
                    add_to(grads, *a, gx);
                }
            }
        }
    }
}

/// The logistic function, written exactly as the [`Graph::sigmoid`] map so
/// fused and unfused gate math agree bitwise.
#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Forward LSTM gate math outside the tape: consumes the pre-activations
/// `z = [i|f|g|o]` (`[B, 4h]`) and the previous cell state (`[B, h]`),
/// returns `(h, c)`. This is exactly the value computation of the fused
/// [`Graph::lstm_gates`] (which calls it), exposed so the packed inference
/// path can run the same math on plain tensors. The gate nonlinearities
/// stay scalar (exp/tanh); the elementwise combines
/// `c = f ⊙ c_prev + i ⊙ g` and `h = o ⊙ tanh(c)` go through the
/// bit-pinned SIMD kernels with the same expression trees as the unfused
/// `add(mul, mul)` / `mul` ops.
pub fn lstm_gates_eval(tz: &Tensor, tc_prev: &Tensor) -> (Tensor, Tensor) {
    let h = tc_prev.cols();
    let rows = tc_prev.rows();
    assert_eq!(tz.cols(), 4 * h, "lstm_gates: z must be [B, 4h]");
    assert_eq!(tz.rows(), rows, "lstm_gates: batch mismatch");
    let lvl = crate::simd::level();
    let mut scratch = crate::pool::take(3 * h);
    scratch.resize(3 * h, 0.0);
    let mut c_data = crate::pool::take(rows * h);
    c_data.resize(rows * h, 0.0);
    for r in 0..rows {
        let zr = tz.row(r);
        let cp = tc_prev.row(r);
        let (iv, rest) = scratch.split_at_mut(h);
        let (fv, gv) = rest.split_at_mut(h);
        for j in 0..h {
            iv[j] = sigmoid(zr[j]);
            fv[j] = sigmoid(zr[h + j]);
            gv[j] = zr[2 * h + j].tanh();
        }
        // Same grouping as the unfused add(mul(f, c_prev), mul(i, g)).
        crate::simd::mul2_add_at(lvl, &mut c_data[r * h..(r + 1) * h], fv, cp, iv, gv);
    }
    let c = Tensor::from_vec(rows, h, c_data);
    let mut h_data = crate::pool::take(rows * h);
    h_data.resize(rows * h, 0.0);
    for r in 0..rows {
        let zr = tz.row(r);
        let cr = c.row(r);
        let (ov, tv) = scratch.split_at_mut(h);
        let tv = &mut tv[..h];
        for j in 0..h {
            ov[j] = sigmoid(zr[3 * h + j]);
            tv[j] = cr[j].tanh();
        }
        crate::simd::mul_at(lvl, &mut h_data[r * h..(r + 1) * h], ov, tv);
    }
    crate::pool::give(scratch);
    (Tensor::from_vec(rows, h, h_data), c)
}

fn softmax_row(row: &mut [f32]) {
    // The max fold and the exp-sum are serial reductions whose result
    // depends on evaluation order, so they stay scalar (see the bit-pinning
    // rules in `simd`); only the per-element normalisation vectorizes.
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    crate::simd::div(row, sum);
}

/// Applies an activation in place, with the exact element expressions of the
/// unfused [`Graph::tanh`] / [`Graph::sigmoid`] / [`Graph::relu`] maps (the
/// Relu goes through the SIMD kernel, which is bit-pinned to `x.max(0.0)`).
pub fn apply_activation(out: &mut Tensor, act: Activation) {
    match act {
        Activation::None => {}
        Activation::Tanh => out.as_mut_slice().iter_mut().for_each(|x| *x = x.tanh()),
        Activation::Sigmoid => {
            out.as_mut_slice().iter_mut().for_each(|x| *x = 1.0 / (1.0 + (-*x).exp()))
        }
        Activation::Relu => crate::simd::relu(out.as_mut_slice()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient of a scalar-valued function of one parameter tensor.
    fn numeric_grad(
        f: &dyn Fn(&Tensor) -> f32,
        at: &Tensor,
        eps: f32,
    ) -> Tensor {
        let mut g = Tensor::zeros(at.rows(), at.cols());
        for r in 0..at.rows() {
            for c in 0..at.cols() {
                let mut plus = at.clone();
                plus.set(r, c, at.get(r, c) + eps);
                let mut minus = at.clone();
                minus.set(r, c, at.get(r, c) - eps);
                g.set(r, c, (f(&plus) - f(&minus)) / (2.0 * eps));
            }
        }
        g
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "grad mismatch: {x} vs {y}\nanalytic {a:?}\nnumeric {b:?}"
            );
        }
    }

    /// Checks the analytic gradient of `build` (a scalar function of a single
    /// parameter) against central differences at the point `at`.
    fn gradcheck(at: Tensor, build: impl Fn(&mut Graph, Var) -> Var) {
        let mut g = Graph::new();
        let p = g.param(at.clone(), 0);
        let loss = build(&mut g, p);
        let grads = g.backward(loss);
        let analytic = grads.for_param(0).expect("no gradient");

        let f = |t: &Tensor| -> f32 {
            let mut g = Graph::new();
            let p = g.param(t.clone(), 0);
            let loss = build(&mut g, p);
            g.value(loss).scalar_value()
        };
        let numeric = numeric_grad(&f, &at, 1e-2);
        assert_close(&analytic, &numeric, 2e-2);
    }

    fn sample(rows: usize, cols: usize, seed: u64) -> Tensor {
        // Tiny deterministic LCG so the test has no external dependencies.
        let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            data.push(((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5);
        }
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn grad_matmul() {
        gradcheck(sample(3, 4, 1), |g, p| {
            let w = g.input(sample(4, 2, 2));
            let y = g.matmul(p, w);
            g.sum_all(y)
        });
    }

    #[test]
    fn grad_matmul_rhs() {
        gradcheck(sample(4, 2, 3), |g, p| {
            let x = g.input(sample(3, 4, 4));
            let y = g.matmul(x, p);
            let t = g.tanh(y);
            g.sum_all(t)
        });
    }

    #[test]
    fn grad_activations() {
        gradcheck(sample(2, 3, 5), |g, p| {
            let a = g.tanh(p);
            let b = g.sigmoid(a);
            let c = g.relu(b);
            g.mean_all(c)
        });
    }

    #[test]
    fn grad_softmax_nll() {
        gradcheck(sample(3, 5, 6), |g, p| {
            let lp = g.log_softmax_rows(p);
            g.nll_loss(lp, &[1, 4, 0])
        });
    }

    #[test]
    fn grad_softmax_weighted() {
        gradcheck(sample(2, 4, 7), |g, p| {
            let s = g.softmax_rows(p);
            let w = g.input(sample(2, 4, 8));
            let m = g.mul(s, w);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_concat_slice() {
        gradcheck(sample(2, 3, 9), |g, p| {
            let q = g.scale(p, 2.0);
            let cat = g.concat_cols(&[p, q]);
            let sl = g.slice_cols(cat, 1, 5);
            let rows = g.concat_rows(&[sl, sl]);
            let sr = g.slice_rows(rows, 1, 3);
            g.sum_all(sr)
        });
    }

    #[test]
    fn grad_broadcast_ops() {
        gradcheck(sample(1, 4, 10), |g, p| {
            let x = g.input(sample(3, 4, 11));
            let a = g.add_broadcast_row(x, p);
            let b = g.mul_broadcast_row(a, p);
            g.sum_all(b)
        });
    }

    #[test]
    fn grad_gather() {
        gradcheck(sample(5, 3, 12), |g, p| {
            let e = g.gather_rows(p, &[0, 2, 2, 4]);
            let t = g.tanh(e);
            g.sum_all(t)
        });
    }

    #[test]
    fn grad_layer_norm() {
        gradcheck(sample(2, 6, 13), |g, p| {
            let y = g.layer_norm_rows(p, 1e-5);
            let w = g.input(sample(2, 6, 14));
            let m = g.mul(y, w);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_sub_mul_transpose() {
        gradcheck(sample(3, 3, 15), |g, p| {
            let t = g.transpose(p);
            let d = g.sub(p, t);
            let m = g.mul(d, d);
            g.mean_all(m)
        });
    }

    #[test]
    fn grad_fused_matmul_bias_act() {
        // Numeric check of the fused backward for each smooth activation
        // (ReLU's kink trips central differences; its equivalence with the
        // unfused chain is pinned in tests/fused_kernels.rs instead).
        for act in [Activation::None, Activation::Tanh, Activation::Sigmoid] {
            gradcheck(sample(3, 4, 20), move |g, p| {
                let w = g.input(sample(4, 2, 21));
                let b = g.input(sample(1, 2, 22));
                let y = g.matmul_bias_act(p, w, Some(b), act);
                g.sum_all(y)
            });
            // Gradient w.r.t. the weight operand.
            gradcheck(sample(4, 2, 23), move |g, p| {
                let x = g.input(sample(3, 4, 24));
                let y = g.matmul_bias_act(x, p, None, act);
                g.sum_all(y)
            });
            // Gradient w.r.t. the bias operand.
            gradcheck(sample(1, 2, 25), move |g, p| {
                let x = g.input(sample(3, 4, 26));
                let w = g.input(sample(4, 2, 27));
                let y = g.matmul_bias_act(x, w, Some(p), act);
                g.sum_all(y)
            });
        }
    }

    #[test]
    fn grad_fused_attn_softmax_query() {
        gradcheck(sample(2, 3, 30), |g, p| {
            let keys = g.input(sample(4, 3, 31));
            let a = g.attn_softmax(p, keys, 0.5, None);
            let w = g.input(sample(2, 4, 32));
            let m = g.mul(a, w);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_fused_attn_softmax_keys_with_mask() {
        gradcheck(sample(4, 3, 33), |g, p| {
            let q = g.input(sample(2, 3, 34));
            let mask = g.input(sample(2, 4, 35));
            let a = g.attn_softmax(q, p, 0.7, Some(mask));
            let w = g.input(sample(2, 4, 36));
            let m = g.mul(a, w);
            g.sum_all(m)
        });
    }

    #[test]
    fn grad_fused_log_softmax_nll() {
        gradcheck(sample(3, 5, 37), |g, p| g.log_softmax_nll(p, &[1, 4, 0]));
    }

    #[test]
    fn reset_clears_tape_keeps_usability() {
        let mut g = Graph::new();
        let p = g.param(Tensor::row_vector(&[1.0, 2.0]), 0);
        let _ = g.sum_all(p);
        assert_eq!(g.len(), 2);
        g.reset();
        assert!(g.is_empty());
        let p = g.param(Tensor::row_vector(&[3.0]), 0);
        let loss = g.sum_all(p);
        let grads = g.backward(loss);
        assert_eq!(grads.for_param(0).unwrap().scalar_value(), 1.0);
    }

    #[test]
    fn dropout_backward_applies_mask() {
        let mut g = Graph::new();
        let p = g.param(Tensor::row_vector(&[1.0, 2.0, 3.0]), 0);
        let mask = vec![2.0, 0.0, 2.0]; // keep-prob 0.5 inverted dropout
        let d = g.dropout(p, mask);
        let loss = g.sum_all(d);
        let grads = g.backward(loss);
        assert_eq!(grads.for_param(0).unwrap().as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn param_reuse_accumulates() {
        // Same parameter registered twice: gradients must sum.
        let mut g = Graph::new();
        let t = Tensor::row_vector(&[1.0, 1.0]);
        let p1 = g.param(t.clone(), 7);
        let p2 = g.param(t, 7);
        let s = g.add(p1, p2);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        assert_eq!(grads.for_param(7).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn inputs_receive_no_gradient() {
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(3.0));
        let p = g.param(Tensor::scalar(2.0), 0);
        let y = g.mul(x, p);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads.for_var(x).is_none());
        assert_eq!(grads.for_param(0).unwrap().scalar_value(), 3.0);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar_loss() {
        let mut g = Graph::new();
        let p = g.param(Tensor::row_vector(&[1.0, 2.0]), 0);
        g.backward(p);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let s = g.softmax_rows(x);
        let t = g.value(s);
        for r in 0..2 {
            let sum: f32 = t.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(t.get(0, 2) > t.get(0, 1) && t.get(0, 1) > t.get(0, 0));
    }
}
