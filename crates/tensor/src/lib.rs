//! Dense `f32` tensors and tape-based reverse-mode automatic differentiation.
//!
//! This crate is the numeric substrate of the ValueNet reproduction. The
//! original system relies on PyTorch; here we implement the minimal set of
//! differentiable operations the ValueNet architecture needs — matrix
//! multiplication, element-wise arithmetic, activations, softmax families,
//! embedding gather, concatenation/slicing, dropout and layer normalisation —
//! on top of a simple tape ([`Graph`]) that records the forward pass and
//! replays it in reverse to accumulate gradients.
//!
//! Tensors are two-dimensional, row-major matrices. Vectors are represented
//! as `1×n` or `n×1` matrices; scalars as `1×1`. This is sufficient for the
//! per-sample (batch size 1) training regime used by the model crate and
//! keeps shape semantics unambiguous.
//!
//! # Example
//!
//! ```
//! use valuenet_tensor::{Graph, Tensor};
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_rows(&[&[1.0, 2.0]]));
//! let w = g.param(Tensor::from_rows(&[&[0.5], &[-0.5]]), 0);
//! let y = g.matmul(x, w); // [1x2] @ [2x1] = [1x1]
//! let loss = g.sum_all(y);
//! let grads = g.backward(loss);
//! let gw = grads.for_param(0).unwrap();
//! assert_eq!(gw.get(0, 0), 1.0);
//! assert_eq!(gw.get(1, 0), 2.0);
//! ```

//! # Allocation behaviour
//!
//! Tensor buffers are recycled through a thread-local size-bucketed pool
//! ([`pool`]); the hottest op compositions have fused single-node variants
//! ([`Graph::matmul_bias_act`], [`Graph::attn_softmax`],
//! [`Graph::log_softmax_nll`]) that can be toggled back to their unfused
//! compositions with [`set_fusion_enabled`] for baseline measurements. See
//! `DESIGN.md`, "Memory & kernel fusion".

mod graph;
pub mod packed;
pub mod pool;
pub mod simd;
mod tensor;

pub use graph::{
    apply_activation, fusion_enabled, lstm_gates_eval, set_fusion_enabled, Activation, Gradients,
    Graph, Var,
};
pub use packed::{PackedMatrix, QuantizedMatrix};
pub use simd::SimdLevel;
pub use tensor::Tensor;
