//! Thread-local, size-bucketed buffer pool behind every [`crate::Tensor`].
//!
//! Each worker thread keeps free lists of `Vec<f32>` buffers bucketed by
//! power-of-two capacity. [`take`] pops from the bucket whose buffers are
//! guaranteed to hold the requested length (capacity rounded *up* to the
//! next power of two on a miss, so a buffer allocated for a shape re-enters
//! the exact bucket that shape asks for next time); [`give`] files a
//! retiring buffer under `floor(log2(capacity))`. `Tensor`'s `Drop` impl
//! routes every buffer through [`give`], so recycling needs no call-site
//! cooperation and a buffer can only be reused after its tensor is gone —
//! live tensors never alias by construction.
//!
//! Reuse order is deterministic: each bucket is a LIFO stack and the pool is
//! thread-local, so a single-threaded run replays the same take/give
//! sequence every time. This preserves the bit-identical-across-thread-count
//! training guarantee — pooling changes *where* a buffer lives, never what
//! is computed.
//!
//! Statistics (hits / misses / recycled and allocated bytes) are plain
//! process-wide atomics that stay live even when observability is disabled,
//! because `BENCH_speed.json` reports them for both the pooled and the
//! baseline arm. When observability *is* enabled they are mirrored into
//! `tensor.pool.*` counters for the summary/JSONL sinks.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Largest pooled bucket: 2^24 elements (64 MiB of `f32`). Bigger buffers
/// are allocated and freed directly — they are rare one-offs and would pin
/// too much memory in a free list.
const NUM_BUCKETS: usize = 25;
/// Per-bucket byte budget; a bucket already holding this much lets further
/// retiring buffers drop instead. The budget must cover the tape's peak live
/// tensor count — a whole training step's forward values and gradients
/// retire at once on `Graph::reset`, and every buffer the budget rejects is
/// a guaranteed allocator round-trip on the next step.
const MAX_BUCKET_BYTES: usize = 1 << 24;

/// Free-list depth cap for a bucket: the byte budget divided by the bucket's
/// buffer size, floored at 8 so even the largest poolable buffers keep a
/// couple of slots.
#[inline]
fn max_per_bucket(bucket: usize) -> usize {
    (MAX_BUCKET_BYTES / (4 << bucket)).max(8)
}

static ENABLED: AtomicBool = AtomicBool::new(true);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static RECYCLED_BYTES: AtomicU64 = AtomicU64::new(0);

static OBS_HITS: valuenet_obs::Counter = valuenet_obs::Counter::new("tensor.pool.hits");
static OBS_MISSES: valuenet_obs::Counter = valuenet_obs::Counter::new("tensor.pool.misses");
static OBS_RECYCLED: valuenet_obs::Counter =
    valuenet_obs::Counter::new("tensor.pool.recycled_bytes");

thread_local! {
    static FREE: RefCell<Vec<Vec<Vec<f32>>>> =
        RefCell::new((0..NUM_BUCKETS).map(|_| Vec::new()).collect());
}

/// Globally enables or disables recycling. When off, [`take`] always
/// allocates and [`give`] always frees — the pre-pool allocator behaviour,
/// used as the baseline arm of the speed benchmark. Stats keep counting
/// either way so both arms report bytes allocated.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recycling is currently on (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Point-in-time pool statistics (process-wide, monotonically increasing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served from a free list.
    pub hits: u64,
    /// `take` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back into a free list by `give`.
    pub returns: u64,
    /// Bytes freshly allocated by misses.
    pub alloc_bytes: u64,
    /// Bytes served from recycled buffers by hits.
    pub recycled_bytes: u64,
}

impl PoolStats {
    /// Hits as a fraction of all `take` calls (0 when nothing was taken).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            returns: self.returns - earlier.returns,
            alloc_bytes: self.alloc_bytes - earlier.alloc_bytes,
            recycled_bytes: self.recycled_bytes - earlier.recycled_bytes,
        }
    }
}

/// Snapshot of the process-wide pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        recycled_bytes: RECYCLED_BYTES.load(Ordering::Relaxed),
    }
}

/// Bucket whose buffers are all guaranteed to hold `len` elements.
#[inline]
fn bucket_for_len(len: usize) -> usize {
    // ceil(log2(len)); len == 1 maps to bucket 0.
    (usize::BITS - (len - 1).leading_zeros()) as usize
}

/// Bucket a buffer of capacity `cap` belongs to: floor(log2(cap)), so every
/// resident of bucket `b` has capacity >= 2^b.
#[inline]
fn bucket_for_cap(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

#[cold]
fn miss(len: usize, cap: usize) -> Vec<f32> {
    MISSES.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(4 * cap as u64, Ordering::Relaxed);
    OBS_MISSES.add(1);
    let _ = len;
    Vec::with_capacity(cap)
}

/// Hands out an empty buffer with capacity for at least `len` elements,
/// recycled when the thread's free list has one. The returned buffer has
/// length 0 — fill it with `extend`/`resize`.
pub fn take(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let b = bucket_for_len(len);
    if b >= NUM_BUCKETS || !enabled() {
        // Unpoolable size, or the pool is off: plain allocation. Capacity is
        // still rounded to the bucket size when poolable so a later
        // re-enable finds buffers in the expected buckets.
        let cap = if b < NUM_BUCKETS { 1 << b } else { len };
        return miss(len, cap);
    }
    let recycled = FREE.try_with(|f| f.borrow_mut()[b].pop()).ok().flatten();
    match recycled {
        Some(mut v) => {
            debug_assert!(v.capacity() >= len);
            v.clear();
            HITS.fetch_add(1, Ordering::Relaxed);
            RECYCLED_BYTES.fetch_add(4 * len as u64, Ordering::Relaxed);
            OBS_HITS.add(1);
            OBS_RECYCLED.add(4 * len as u64);
            v
        }
        None => miss(len, 1 << b),
    }
}

/// Files a retiring buffer back into the thread's free list (or frees it
/// when pooling is off, the bucket is full, or the thread is shutting down).
pub fn give(v: Vec<f32>) {
    if v.capacity() == 0 || !enabled() {
        return;
    }
    let b = bucket_for_cap(v.capacity());
    if b >= NUM_BUCKETS {
        return;
    }
    // try_with: during thread teardown the TLS slot may already be gone; the
    // buffer then just drops normally.
    let _ = FREE.try_with(|f| {
        let mut f = f.borrow_mut();
        if f[b].len() < max_per_bucket(b) {
            RETURNS.fetch_add(1, Ordering::Relaxed);
            f[b].push(v);
        }
    });
}

/// Drops every buffer held by the current thread's free lists (used by
/// benchmarks to separate measurement arms).
pub fn clear_thread_local() {
    let _ = FREE.try_with(|f| {
        for bucket in f.borrow_mut().iter_mut() {
            bucket.clear();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_requested_length() {
        assert_eq!(bucket_for_len(1), 0);
        assert_eq!(bucket_for_len(2), 1);
        assert_eq!(bucket_for_len(3), 2);
        assert_eq!(bucket_for_len(4), 2);
        assert_eq!(bucket_for_len(5), 3);
        for len in 1..100usize {
            let b = bucket_for_len(len);
            assert!((1usize << b) >= len, "bucket {b} too small for len {len}");
        }
    }

    #[test]
    fn give_then_take_reuses_when_enabled() {
        // The pool is thread-local, so this test owns its free lists.
        clear_thread_local();
        let v = take(10);
        assert!(v.capacity() >= 10);
        let ptr = v.as_ptr();
        give(v);
        let w = take(10);
        if enabled() {
            assert_eq!(w.as_ptr(), ptr, "LIFO bucket should return the same buffer");
        }
        assert!(w.is_empty());
    }

    #[test]
    fn cap_floor_bucket_always_satisfies_len_bucket() {
        // A buffer allocated by a miss for length L must land, via
        // bucket_for_cap, back in bucket_for_len(L).
        for len in 1..200usize {
            let b = bucket_for_len(len);
            assert_eq!(bucket_for_cap(1 << b), b);
        }
    }
}
