//! A dense, row-major, two-dimensional `f32` matrix.

use std::fmt;

/// A dense row-major matrix of `f32` values.
///
/// All autodiff operations in [`crate::Graph`] produce and consume `Tensor`s.
/// Shape errors are programming errors and panic with a descriptive message.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { data: vec![0.0; rows * cols], rows, cols }
    }

    /// A `rows × cols` tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Tensor { data: vec![v; rows * cols], rows, cols }
    }

    /// A `1 × 1` tensor holding a single scalar.
    pub fn scalar(v: f32) -> Self {
        Tensor { data: vec![v], rows: 1, cols: 1 }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: buffer of {} elements cannot be {rows}x{cols}",
            data.len()
        );
        Tensor { data, rows, cols }
    }

    /// Builds a tensor from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Tensor::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Tensor::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { data, rows: rows.len(), cols }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(v: &[f32]) -> Self {
        Tensor { data: v.to_vec(), rows: 1, cols: v.len() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 × 1`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on {}x{} tensor", self.rows, self.cols);
        self.data[0]
    }

    /// Matrix product `self @ other`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        // i-k-j loop order: the inner loop walks both `other` and `out`
        // contiguously, which the compiler can vectorise.
        for i in 0..n {
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * m..(p + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Element-wise binary zip with another tensor of identical shape.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        Tensor {
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// In-place element-wise accumulation `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element in a `1 × n` or `n × 1` vector.
    pub fn argmax(&self) -> usize {
        assert!(self.rows == 1 || self.cols == 1, "argmax expects a vector");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let cols = self.cols.min(8);
            let vals: Vec<String> =
                self.row(r)[..cols].iter().map(|v| format!("{v:.4}")).collect();
            let ell = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", vals.join(", "), ell)?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_and_get() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Tensor::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(a.matmul(&b).scalar_value(), 3.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn argmax_row_and_col() {
        assert_eq!(Tensor::row_vector(&[0.1, 3.0, -1.0]).argmax(), 1);
        let col = Tensor::from_vec(3, 1, vec![5.0, 1.0, 2.0]);
        assert_eq!(col.argmax(), 0);
    }

    #[test]
    fn map_zip_sum() {
        let a = Tensor::row_vector(&[1.0, -2.0]);
        assert_eq!(a.map(f32::abs).sum(), 3.0);
        let b = Tensor::row_vector(&[3.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).as_slice(), &[3.0, -8.0]);
    }
}
