//! A dense, row-major, two-dimensional `f32` matrix.

use crate::simd::{self, SimdLevel};
use std::fmt;

// Kernel accounting for the production matmul paths (see `DESIGN.md`,
// "Observability"): multiply-adds count as 2 FLOPs, bytes are the three
// operand matrices read/written once. The `tensor.matmul.gflops` line in the
// summary sink is derived as flops / nanos.
static MATMUL_CALLS: valuenet_obs::Counter = valuenet_obs::Counter::new("tensor.matmul.calls");
static MATMUL_FLOPS: valuenet_obs::Counter = valuenet_obs::Counter::new("tensor.matmul.flops");
static MATMUL_BYTES: valuenet_obs::Counter = valuenet_obs::Counter::new("tensor.matmul.bytes");
static MATMUL_NANOS: valuenet_obs::Counter = valuenet_obs::Counter::new("tensor.matmul.nanos");

/// Records one `n×k @ k×m` kernel invocation that started at `start_ns`.
/// Callers only reach this when observability is enabled.
#[cold]
fn record_matmul(n: usize, k: usize, m: usize, start_ns: u64) {
    MATMUL_CALLS.add(1);
    MATMUL_FLOPS.add(2 * (n as u64) * (k as u64) * (m as u64));
    MATMUL_BYTES.add(4 * ((n * k) as u64 + (k * m) as u64 + (n * m) as u64));
    MATMUL_NANOS.add(valuenet_obs::now_ns().saturating_sub(start_ns));
}

/// A dense row-major matrix of `f32` values.
///
/// All autodiff operations in [`crate::Graph`] produce and consume `Tensor`s.
/// Shape errors are programming errors and panic with a descriptive message.
///
/// Buffers come from and return to the thread-local [`crate::pool`]: every
/// constructor draws its backing `Vec` via [`crate::pool::take`] and `Drop`
/// files it back with [`crate::pool::give`], so forward and gradient buffers
/// are recycled across samples without any call-site cooperation. A buffer
/// can only re-enter circulation after its tensor is dropped, so live
/// tensors never alias.
#[derive(PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = crate::pool::take(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor { data, rows: self.rows, cols: self.cols }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        crate::pool::give(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// A `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let mut data = crate::pool::take(rows * cols);
        data.resize(rows * cols, 0.0);
        Tensor { data, rows, cols }
    }

    /// A `rows × cols` tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        let mut data = crate::pool::take(rows * cols);
        data.resize(rows * cols, v);
        Tensor { data, rows, cols }
    }

    /// A `1 × 1` tensor holding a single scalar.
    pub fn scalar(v: f32) -> Self {
        let mut data = crate::pool::take(1);
        data.push(v);
        Tensor { data, rows: 1, cols: 1 }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: buffer of {} elements cannot be {rows}x{cols}",
            data.len()
        );
        Tensor { data, rows, cols }
    }

    /// Builds a tensor from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Tensor::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = crate::pool::take(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Tensor::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { data, rows: rows.len(), cols }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(v: &[f32]) -> Self {
        let mut data = crate::pool::take(v.len());
        data.extend_from_slice(v);
        Tensor { data, rows: 1, cols: v.len() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 × 1`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on {}x{} tensor", self.rows, self.cols);
        self.data[0]
    }

    /// Matrix product `self @ other` via the register-blocked, cache-tiled
    /// kernel ([`block_kernel`]): four output rows are produced per pass so
    /// every loaded `other` value feeds four FMAs, and columns are tiled so
    /// the active output block stays L1-resident. See
    /// [`Tensor::matmul_naive`] for the reference kernel.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let lvl = simd::level();
        if !valuenet_obs::enabled() {
            return block_kernel(&self.data, &other.data, self.rows, self.cols, other.cols, lvl);
        }
        let start = valuenet_obs::now_ns();
        let out = block_kernel(&self.data, &other.data, self.rows, self.cols, other.cols, lvl);
        record_matmul(self.rows, self.cols, other.cols, start);
        out
    }

    /// [`Tensor::matmul`] pinned to an explicit SIMD level. All levels are
    /// bit-identical; tests and benchmarks use this to compare arms without
    /// touching the process-wide level.
    #[doc(hidden)]
    pub fn matmul_with_level(&self, other: &Tensor, lvl: SimdLevel) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        block_kernel(&self.data, &other.data, self.rows, self.cols, other.cols, lvl)
    }

    /// [`Tensor::matmul`] without the observability check — the baseline for
    /// the disabled-path overhead benchmark (`benches/obs_overhead.rs`).
    /// Production code always goes through [`Tensor::matmul`].
    #[doc(hidden)]
    pub fn matmul_uninstrumented(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        block_kernel(&self.data, &other.data, self.rows, self.cols, other.cols, simd::level())
    }

    /// Reference matrix product (the original straightforward i-k-j kernel).
    ///
    /// Kept as the oracle for equivalence tests and as the baseline in the
    /// matmul benchmarks; production code paths use [`Tensor::matmul`].
    pub fn matmul_naive(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        for i in 0..n {
            let out_row = &mut out.data[i * m..(i + 1) * m];
            for p in 0..k {
                let a = self.data[i * k + p];
                let b_row = &other.data[p * m..(p + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ`. Shapes: `n×k @ (m×k)ᵀ → n×m`.
    ///
    /// Two regimes, chosen by the left operand's height. Wide (`n >= 8`):
    /// pack `otherᵀ` once through the tiled [`Tensor::transpose`] and run the
    /// blocked kernel on the panel — the `k·m`-copy pack amortises over `n`
    /// reuses. Narrow (`n < 8`, the shape of every backward `dz @ wᵀ` and of
    /// beam-step attention scores): the pack would cost as much memory
    /// traffic as the multiply itself, so compute row dots directly via
    /// [`dot_kernel`] instead. Both regimes fold each output element over
    /// the shared dimension in ascending order, one add per step, so the
    /// choice never changes a bit of the result.
    ///
    /// The narrow path is part of the allocation-free execution rework and
    /// follows its master toggle ([`crate::set_fusion_enabled`]); with the
    /// rework off every shape takes the pre-rework pack-and-block path, so
    /// the speed benchmark's baseline arm measures the legacy kernel.
    pub fn matmul_transposed_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed_b: {}x{} @ ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let lvl = simd::level();
        let start = valuenet_obs::enabled().then(valuenet_obs::now_ns);
        let out = if self.rows < 8 && crate::fusion_enabled() {
            dot_kernel(&self.data, &other.data, self.rows, self.cols, other.rows, lvl)
        } else {
            let packed = other.transpose();
            block_kernel(&self.data, &packed.data, self.rows, self.cols, other.rows, lvl)
        };
        if let Some(s) = start {
            record_matmul(self.rows, self.cols, other.rows, s);
        }
        out
    }

    /// [`Tensor::matmul_transposed_b`] pinned to an explicit SIMD level,
    /// forcing the narrow-left direct-dot kernel. Bit-identical at every
    /// level; used by tests and benchmarks.
    #[doc(hidden)]
    pub fn matmul_transposed_b_with_level(&self, other: &Tensor, lvl: SimdLevel) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed_b: {}x{} @ ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        dot_kernel(&self.data, &other.data, self.rows, self.cols, other.rows, lvl)
    }

    /// `selfᵀ @ other` without materialising the transpose.
    ///
    /// Computed as a sum of rank-1 updates, four shared rows per pass: for
    /// rows `p..p+4`, `out[i] += Σ self[p][i] · other.row(p)`, so all reads
    /// and writes are contiguous and each output row is traversed once per
    /// four input rows. Shapes: `(k×n)ᵀ @ k×m → n×m`.
    pub fn matmul_transposed_a(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transposed_a: ({}x{})ᵀ @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let start = valuenet_obs::enabled().then(valuenet_obs::now_ns);
        let out = transposed_a_kernel(&self.data, &other.data, self.rows, self.cols, other.cols, simd::level());
        if let Some(s) = start {
            record_matmul(self.cols, self.rows, other.cols, s);
        }
        out
    }

    /// [`Tensor::matmul_transposed_a`] pinned to an explicit SIMD level.
    /// Bit-identical at every level; used by tests and benchmarks.
    #[doc(hidden)]
    pub fn matmul_transposed_a_with_level(&self, other: &Tensor, lvl: SimdLevel) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transposed_a: ({}x{})ᵀ @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        transposed_a_kernel(&self.data, &other.data, self.rows, self.cols, other.cols, lvl)
    }

    /// Transposed copy, tiled so the destination is written contiguously.
    ///
    /// The inner loop walks one output row left to right while the source
    /// column stays inside a 32×32 tile, keeping both sides' cache lines
    /// resident instead of striding across the whole source per element.
    pub fn transpose(&self) -> Tensor {
        const TILE: usize = 32;
        let mut out = Tensor::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TILE) {
            let r_end = (rb + TILE).min(self.rows);
            for cb in (0..self.cols).step_by(TILE) {
                let c_end = (cb + TILE).min(self.cols);
                for c in cb..c_end {
                    let out_row = &mut out.data[c * self.rows + rb..c * self.rows + r_end];
                    for (o, r) in out_row.iter_mut().zip(rb..r_end) {
                        *o = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = crate::pool::take(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor { data, rows: self.rows, cols: self.cols }
    }

    /// Element-wise binary zip with another tensor of identical shape.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        let mut data = crate::pool::take(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Tensor { data, rows: self.rows, cols: self.cols }
    }

    /// In-place element-wise accumulation `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element in a `1 × n` or `n × 1` vector.
    pub fn argmax(&self) -> usize {
        assert!(self.rows == 1 || self.cols == 1, "argmax expects a vector");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// The shared inner kernel behind [`Tensor::matmul`] and
/// [`Tensor::matmul_transposed_b`]: a standard `n×k @ k×m` row-major product.
///
/// Two levels of blocking over the naive i-k-j loop:
///
/// * **Register blocking over rows** — four output rows are computed per
///   pass, so each `b` element loaded in the vectorisable inner axpy feeds
///   four FMA streams instead of one, quartering the B-panel traffic that
///   dominates the naive kernel at sizes past L1.
/// * **Cache tiling over columns** — the column window is capped so the four
///   active output rows plus the current `b` row stay L1-resident while `p`
///   sweeps the full depth.
///
/// The inner loop keeps the naive kernel's contiguous multiply-accumulate
/// shape (independent lanes, no reduction chain), which the compiler
/// auto-vectorises at the baseline target.
///
/// `inline(never)`: call overhead is nothing next to the 2·n·k·m-FLOP body,
/// and one out-of-line copy keeps every `matmul` entry point (instrumented
/// or not) on the same code — avoiding per-caller layout/alignment skew,
/// which would otherwise dwarf the effect `benches/obs_overhead.rs` measures.
/// Narrow-case kernel for [`Tensor::matmul_transposed_b`]: `n×k @ (m×k)ᵀ`
/// as plain row dots, no transpose pack. Four output columns are produced
/// per pass — four independent accumulator chains over four contiguous `b`
/// rows — so the loop has instruction-level parallelism even though each
/// individual dot is a serial f32 fold. Each output element is a strict
/// ascending fold over the shared dimension, exactly like the blocked
/// kernel's per-element accumulation, so the two paths agree bitwise.
#[inline(never)]
fn dot_kernel(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, lvl: SimdLevel) -> Tensor {
    let mut data = crate::pool::take(n * m);
    for i in 0..n {
        let x = &a[i * k..(i + 1) * k];
        simd::dot_rows_at(lvl, x, b, k, m, &mut data);
    }
    Tensor { data, rows: n, cols: m }
}

/// The kernel behind [`Tensor::matmul_transposed_a`]: `selfᵀ @ other` as a
/// sum of rank-1 updates, four shared rows per pass. `a` is `k×n`, `b` is
/// `k×m`, result is `n×m`.
#[inline(never)]
fn transposed_a_kernel(a: &[f32], b: &[f32], k: usize, n: usize, m: usize, lvl: SimdLevel) -> Tensor {
    let mut out = Tensor::zeros(n, m);
    let full_p = k - k % 4;
    for p in (0..full_p).step_by(4) {
        let b0 = &b[p * m..(p + 1) * m];
        let b1 = &b[(p + 1) * m..(p + 2) * m];
        let b2 = &b[(p + 2) * m..(p + 3) * m];
        let b3 = &b[(p + 3) * m..(p + 4) * m];
        for i in 0..n {
            let a0 = a[p * n + i];
            let a1 = a[(p + 1) * n + i];
            let a2 = a[(p + 2) * n + i];
            let a3 = a[(p + 3) * n + i];
            let out_row = &mut out.data[i * m..(i + 1) * m];
            simd::axpy4_shared_at(lvl, out_row, a0, a1, a2, a3, b0, b1, b2, b3);
        }
    }
    for p in full_p..k {
        let b_row = &b[p * m..(p + 1) * m];
        for i in 0..n {
            let av = a[p * n + i];
            let out_row = &mut out.data[i * m..(i + 1) * m];
            simd::axpy_at(lvl, out_row, av, b_row);
        }
    }
    out
}

#[inline(never)]
fn block_kernel(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, lvl: SimdLevel) -> Tensor {
    const MR: usize = 4; // output rows per register block
    const JC: usize = 512; // column tile: MR rows × 512 cols × 4 B = 8 KiB
    let mut out = Tensor::zeros(n, m);
    let full_i = n - n % MR;
    for jb in (0..m).step_by(JC) {
        let jw = JC.min(m - jb);
        for i in (0..full_i).step_by(MR) {
            // Four disjoint output-row windows for this column tile.
            let block = &mut out.data[i * m..(i + MR) * m];
            let (r0, rest) = block.split_at_mut(m);
            let (r1, rest) = rest.split_at_mut(m);
            let (r2, r3) = rest.split_at_mut(m);
            let r0 = &mut r0[jb..jb + jw];
            let r1 = &mut r1[jb..jb + jw];
            let r2 = &mut r2[jb..jb + jw];
            let r3 = &mut r3[jb..jb + jw];
            for p in 0..k {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let b_row = &b[p * m + jb..p * m + jb + jw];
                simd::axpy4_at(lvl, r0, r1, r2, r3, a0, a1, a2, a3, b_row);
            }
        }
        // Row remainder: plain single-row axpy over the same column tile.
        for i in full_i..n {
            let out_row = &mut out.data[i * m + jb..i * m + jb + jw];
            for p in 0..k {
                let av = a[i * k + p];
                let b_row = &b[p * m + jb..p * m + jb + jw];
                simd::axpy_at(lvl, out_row, av, b_row);
            }
        }
    }
    out
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            let cols = self.cols.min(8);
            let vals: Vec<String> =
                self.row(r)[..cols].iter().map(|v| format!("{v:.4}")).collect();
            let ell = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", vals.join(", "), ell)?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_and_get() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Tensor::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        assert_eq!(a.matmul(&b).scalar_value(), 3.0);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn blocked_matches_naive_on_awkward_shapes() {
        // Shapes straddling the 2×4 block edges and the dot4 tail.
        for &(n, k, m) in &[(1, 1, 1), (2, 4, 4), (3, 5, 7), (8, 3, 2), (5, 9, 6), (7, 17, 13)] {
            let a = Tensor::from_vec(
                n,
                k,
                (0..n * k).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect(),
            );
            let b = Tensor::from_vec(
                k,
                m,
                (0..k * m).map(|i| ((i * 5 + 1) % 13) as f32 - 6.0).collect(),
            );
            let fast = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert_eq!(fast.shape(), naive.shape());
            for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{n}x{k}x{m}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn transposed_kernels_match_explicit_transpose() {
        let a = Tensor::from_vec(3, 5, (0..15).map(|i| i as f32 * 0.5 - 3.0).collect());
        let b = Tensor::from_vec(4, 5, (0..20).map(|i| (i as f32).cos()).collect());
        let direct = a.matmul_transposed_b(&b);
        let reference = a.matmul_naive(&b.transpose());
        for (x, y) in direct.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Tensor::from_vec(3, 4, (0..12).map(|i| (i as f32).sin()).collect());
        let direct = a.matmul_transposed_a(&c); // (3x5)ᵀ @ 3x4 = 5x4
        let reference = a.transpose().matmul_naive(&c);
        assert_eq!(direct.shape(), (5, 4));
        for (x, y) in direct.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn argmax_row_and_col() {
        assert_eq!(Tensor::row_vector(&[0.1, 3.0, -1.0]).argmax(), 1);
        let col = Tensor::from_vec(3, 1, vec![5.0, 1.0, 2.0]);
        assert_eq!(col.argmax(), 0);
    }

    #[test]
    fn map_zip_sum() {
        let a = Tensor::row_vector(&[1.0, -2.0]);
        assert_eq!(a.map(f32::abs).sum(), 3.0);
        let b = Tensor::row_vector(&[3.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).as_slice(), &[3.0, -8.0]);
    }
}
