//! Runtime-dispatched SSE2/AVX2 vector kernels, bit-pinned to scalar.
//!
//! Every kernel here is a *vectorization across independent output elements*
//! of a scalar loop that lives next to it in this file. The per-element
//! arithmetic — the fold order over the shared dimension, the exact
//! expression tree, one multiply and one add per step — is identical between
//! the scalar body and each SIMD body, so the results are bit-identical for
//! every input, and the scalar path stays the proptest oracle (the same
//! discipline as the fused kernels, see DESIGN.md "SIMD & quantization").
//!
//! Two rules keep that promise honest:
//!
//! * **No FMA.** The host may support fused multiply-add, but a fused
//!   rounding differs from `mul` + `add`. Every kernel issues separate
//!   multiply and add instructions.
//! * **No reassociated reductions.** Serial folds whose order defines the
//!   result (softmax row maxima, exp-sums, log-sum-exp) stay scalar; SIMD
//!   lanes only ever hold *different* output elements, never partial sums of
//!   the same element.
//!
//! The active level is chosen once per process from
//! [`is_x86_feature_detected!`], can be capped with `VN_SIMD=scalar|sse2|avx2`
//! (for baseline measurements), and can be switched at runtime with
//! [`set_level`] (clamped to what the CPU supports) for in-process benchmark
//! arms. Because all levels are bit-identical, flipping the level is always
//! safe — it only changes speed.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Instruction-set tier a kernel runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Plain Rust loops (still auto-vectorized by LLVM at the baseline
    /// x86-64 target, but with no explicit intrinsics).
    Scalar = 0,
    /// 128-bit SSE2 kernels (baseline on x86-64).
    Sse2 = 1,
    /// 256-bit AVX2 kernels.
    Avx2 = 2,
}

impl SimdLevel {
    /// Stable name used in bench artifacts (`none`/`sse2`/`avx2`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "none",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    fn from_u8(v: u8) -> Option<SimdLevel> {
        match v {
            0 => Some(SimdLevel::Scalar),
            1 => Some(SimdLevel::Sse2),
            2 => Some(SimdLevel::Avx2),
            _ => None,
        }
    }
}

/// Widest level the running CPU supports.
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if is_x86_feature_detected!("sse2") {
                return SimdLevel::Sse2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Active level; `u8::MAX` means "not initialised yet".
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn init_level() -> SimdLevel {
    let detected = detected_level();
    let level = match std::env::var("VN_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "scalar" | "none" | "off" | "0" => SimdLevel::Scalar,
            "sse2" | "sse" => SimdLevel::Sse2,
            "avx2" | "avx" => SimdLevel::Avx2,
            other => {
                eprintln!("VN_SIMD: unknown level {other:?}, using detected");
                detected
            }
        },
        Err(_) => detected,
    };
    level.min(detected)
}

/// The level every dispatching kernel uses right now.
pub fn level() -> SimdLevel {
    match SimdLevel::from_u8(LEVEL.load(Ordering::Relaxed)) {
        Some(l) => l,
        None => {
            let l = init_level();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
    }
}

/// Sets the active level (clamped to what the CPU supports) and returns the
/// level actually installed. Used by benchmarks to time scalar/SSE2/AVX2
/// arms in one process; results are bit-identical at every level.
pub fn set_level(l: SimdLevel) -> SimdLevel {
    let clamped = l.min(detected_level());
    LEVEL.store(clamped as u8, Ordering::Relaxed);
    clamped
}

// ---------------------------------------------------------------------------
// axpy family: rows of the register-blocked matmul micro-kernel
// ---------------------------------------------------------------------------

/// Scalar body of the 4-row axpy: `r_i[j] += a_i * b[j]`.
#[allow(clippy::too_many_arguments)]
fn axpy4_scalar(
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
    a0: f32,
    a1: f32,
    a2: f32,
    a3: f32,
    b: &[f32],
) {
    for (j, &bv) in b.iter().enumerate() {
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

/// Scalar single-row axpy: `out[j] += a * b[j]`.
fn axpy_scalar(out: &mut [f32], a: f32, b: &[f32]) {
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += a * bv;
    }
}

/// Scalar body of the shared-rows update used by `matmul_transposed_a`:
/// `out[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]` (left-associated).
#[allow(clippy::too_many_arguments)]
fn axpy4_shared_scalar(
    out: &mut [f32],
    a0: f32,
    a1: f32,
    a2: f32,
    a3: f32,
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    for j in 0..out.len() {
        out[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The intrinsic bodies. Each follows its scalar twin above element by
    //! element: same fold order, separate mul/add (never FMA).
    use core::arch::x86_64::*;

    /// 4-row axpy, 128-bit lanes.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn axpy4_sse2(
        r0: &mut [f32],
        r1: &mut [f32],
        r2: &mut [f32],
        r3: &mut [f32],
        a0: f32,
        a1: f32,
        a2: f32,
        a3: f32,
        b: &[f32],
    ) {
        let m = b.len();
        let va0 = _mm_set1_ps(a0);
        let va1 = _mm_set1_ps(a1);
        let va2 = _mm_set1_ps(a2);
        let va3 = _mm_set1_ps(a3);
        let mut j = 0;
        while j + 4 <= m {
            let vb = _mm_loadu_ps(b.as_ptr().add(j));
            let p0 = r0.as_mut_ptr().add(j);
            let p1 = r1.as_mut_ptr().add(j);
            let p2 = r2.as_mut_ptr().add(j);
            let p3 = r3.as_mut_ptr().add(j);
            _mm_storeu_ps(p0, _mm_add_ps(_mm_loadu_ps(p0), _mm_mul_ps(va0, vb)));
            _mm_storeu_ps(p1, _mm_add_ps(_mm_loadu_ps(p1), _mm_mul_ps(va1, vb)));
            _mm_storeu_ps(p2, _mm_add_ps(_mm_loadu_ps(p2), _mm_mul_ps(va2, vb)));
            _mm_storeu_ps(p3, _mm_add_ps(_mm_loadu_ps(p3), _mm_mul_ps(va3, vb)));
            j += 4;
        }
        while j < m {
            let bv = b[j];
            r0[j] += a0 * bv;
            r1[j] += a1 * bv;
            r2[j] += a2 * bv;
            r3[j] += a3 * bv;
            j += 1;
        }
    }

    /// 4-row axpy, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn axpy4_avx2(
        r0: &mut [f32],
        r1: &mut [f32],
        r2: &mut [f32],
        r3: &mut [f32],
        a0: f32,
        a1: f32,
        a2: f32,
        a3: f32,
        b: &[f32],
    ) {
        let m = b.len();
        let va0 = _mm256_set1_ps(a0);
        let va1 = _mm256_set1_ps(a1);
        let va2 = _mm256_set1_ps(a2);
        let va3 = _mm256_set1_ps(a3);
        let mut j = 0;
        while j + 8 <= m {
            let vb = _mm256_loadu_ps(b.as_ptr().add(j));
            let p0 = r0.as_mut_ptr().add(j);
            let p1 = r1.as_mut_ptr().add(j);
            let p2 = r2.as_mut_ptr().add(j);
            let p3 = r3.as_mut_ptr().add(j);
            _mm256_storeu_ps(p0, _mm256_add_ps(_mm256_loadu_ps(p0), _mm256_mul_ps(va0, vb)));
            _mm256_storeu_ps(p1, _mm256_add_ps(_mm256_loadu_ps(p1), _mm256_mul_ps(va1, vb)));
            _mm256_storeu_ps(p2, _mm256_add_ps(_mm256_loadu_ps(p2), _mm256_mul_ps(va2, vb)));
            _mm256_storeu_ps(p3, _mm256_add_ps(_mm256_loadu_ps(p3), _mm256_mul_ps(va3, vb)));
            j += 8;
        }
        while j < m {
            let bv = b[j];
            r0[j] += a0 * bv;
            r1[j] += a1 * bv;
            r2[j] += a2 * bv;
            r3[j] += a3 * bv;
            j += 1;
        }
    }

    /// Single-row axpy, 128-bit lanes.
    pub unsafe fn axpy_sse2(out: &mut [f32], a: f32, b: &[f32]) {
        let m = out.len();
        let va = _mm_set1_ps(a);
        let mut j = 0;
        while j + 4 <= m {
            let p = out.as_mut_ptr().add(j);
            let vb = _mm_loadu_ps(b.as_ptr().add(j));
            _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), _mm_mul_ps(va, vb)));
            j += 4;
        }
        while j < m {
            out[j] += a * b[j];
            j += 1;
        }
    }

    /// Single-row axpy, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(out: &mut [f32], a: f32, b: &[f32]) {
        let m = out.len();
        let va = _mm256_set1_ps(a);
        let mut j = 0;
        while j + 8 <= m {
            let p = out.as_mut_ptr().add(j);
            let vb = _mm256_loadu_ps(b.as_ptr().add(j));
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), _mm256_mul_ps(va, vb)));
            j += 8;
        }
        while j < m {
            out[j] += a * b[j];
            j += 1;
        }
    }

    /// Shared-rows update, 128-bit lanes. The expression tree matches the
    /// scalar `out[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]`:
    /// `out + ((((a0·b0) + (a1·b1)) + (a2·b2)) + (a3·b3))`.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn axpy4_shared_sse2(
        out: &mut [f32],
        a0: f32,
        a1: f32,
        a2: f32,
        a3: f32,
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let m = out.len();
        let va0 = _mm_set1_ps(a0);
        let va1 = _mm_set1_ps(a1);
        let va2 = _mm_set1_ps(a2);
        let va3 = _mm_set1_ps(a3);
        let mut j = 0;
        while j + 4 <= m {
            let t01 = _mm_add_ps(
                _mm_mul_ps(va0, _mm_loadu_ps(b0.as_ptr().add(j))),
                _mm_mul_ps(va1, _mm_loadu_ps(b1.as_ptr().add(j))),
            );
            let t012 = _mm_add_ps(t01, _mm_mul_ps(va2, _mm_loadu_ps(b2.as_ptr().add(j))));
            let t = _mm_add_ps(t012, _mm_mul_ps(va3, _mm_loadu_ps(b3.as_ptr().add(j))));
            let p = out.as_mut_ptr().add(j);
            _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), t));
            j += 4;
        }
        while j < m {
            out[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            j += 1;
        }
    }

    /// Shared-rows update, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn axpy4_shared_avx2(
        out: &mut [f32],
        a0: f32,
        a1: f32,
        a2: f32,
        a3: f32,
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        let m = out.len();
        let va0 = _mm256_set1_ps(a0);
        let va1 = _mm256_set1_ps(a1);
        let va2 = _mm256_set1_ps(a2);
        let va3 = _mm256_set1_ps(a3);
        let mut j = 0;
        while j + 8 <= m {
            let t01 = _mm256_add_ps(
                _mm256_mul_ps(va0, _mm256_loadu_ps(b0.as_ptr().add(j))),
                _mm256_mul_ps(va1, _mm256_loadu_ps(b1.as_ptr().add(j))),
            );
            let t012 =
                _mm256_add_ps(t01, _mm256_mul_ps(va2, _mm256_loadu_ps(b2.as_ptr().add(j))));
            let t = _mm256_add_ps(t012, _mm256_mul_ps(va3, _mm256_loadu_ps(b3.as_ptr().add(j))));
            let p = out.as_mut_ptr().add(j);
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), t));
            j += 8;
        }
        while j < m {
            out[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            j += 1;
        }
    }

    /// Transposes four 4-lane rows into four 4-lane columns.
    #[inline(always)]
    unsafe fn transpose4(
        r0: __m128,
        r1: __m128,
        r2: __m128,
        r3: __m128,
    ) -> (__m128, __m128, __m128, __m128) {
        let t0 = _mm_unpacklo_ps(r0, r1);
        let t1 = _mm_unpacklo_ps(r2, r3);
        let t2 = _mm_unpackhi_ps(r0, r1);
        let t3 = _mm_unpackhi_ps(r2, r3);
        (
            _mm_movelh_ps(t0, t1),
            _mm_movehl_ps(t1, t0),
            _mm_movelh_ps(t2, t3),
            _mm_movehl_ps(t3, t2),
        )
    }

    /// Four dot products `x · y_t` with one serial ascending-`l` fold per
    /// lane: rows are loaded 4 elements at a time, transposed in registers,
    /// and each step adds `x[l] * y_t[l]` to lane `t` — exactly the scalar
    /// accumulator order of `dot_kernel`.
    pub unsafe fn dot4_sse2(x: &[f32], y0: &[f32], y1: &[f32], y2: &[f32], y3: &[f32]) -> [f32; 4] {
        let k = x.len();
        let mut acc = _mm_setzero_ps();
        let mut l = 0;
        while l + 4 <= k {
            let r0 = _mm_loadu_ps(y0.as_ptr().add(l));
            let r1 = _mm_loadu_ps(y1.as_ptr().add(l));
            let r2 = _mm_loadu_ps(y2.as_ptr().add(l));
            let r3 = _mm_loadu_ps(y3.as_ptr().add(l));
            let (c0, c1, c2, c3) = transpose4(r0, r1, r2, r3);
            acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(x[l]), c0));
            acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(x[l + 1]), c1));
            acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(x[l + 2]), c2));
            acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(x[l + 3]), c3));
            l += 4;
        }
        while l < k {
            let col = _mm_set_ps(y3[l], y2[l], y1[l], y0[l]);
            acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(x[l]), col));
            l += 1;
        }
        let mut out = [0.0f32; 4];
        _mm_storeu_ps(out.as_mut_ptr(), acc);
        out
    }

    /// Eight dot products at once: two in-register 4×4 transposes feed a
    /// 256-bit accumulator, one serial ascending-`l` fold per lane.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn dot8_avx2(
        x: &[f32],
        y0: &[f32],
        y1: &[f32],
        y2: &[f32],
        y3: &[f32],
        y4: &[f32],
        y5: &[f32],
        y6: &[f32],
        y7: &[f32],
    ) -> [f32; 8] {
        let k = x.len();
        let mut acc = _mm256_setzero_ps();
        let mut l = 0;
        while l + 4 <= k {
            let (lo0, lo1, lo2, lo3) = transpose4(
                _mm_loadu_ps(y0.as_ptr().add(l)),
                _mm_loadu_ps(y1.as_ptr().add(l)),
                _mm_loadu_ps(y2.as_ptr().add(l)),
                _mm_loadu_ps(y3.as_ptr().add(l)),
            );
            let (hi0, hi1, hi2, hi3) = transpose4(
                _mm_loadu_ps(y4.as_ptr().add(l)),
                _mm_loadu_ps(y5.as_ptr().add(l)),
                _mm_loadu_ps(y6.as_ptr().add(l)),
                _mm_loadu_ps(y7.as_ptr().add(l)),
            );
            let c0 = _mm256_set_m128(hi0, lo0);
            let c1 = _mm256_set_m128(hi1, lo1);
            let c2 = _mm256_set_m128(hi2, lo2);
            let c3 = _mm256_set_m128(hi3, lo3);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(x[l]), c0));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(x[l + 1]), c1));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(x[l + 2]), c2));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(x[l + 3]), c3));
            l += 4;
        }
        while l < k {
            let col = _mm256_set_ps(y7[l], y6[l], y5[l], y4[l], y3[l], y2[l], y1[l], y0[l]);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(x[l]), col));
            l += 1;
        }
        let mut out = [0.0f32; 8];
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
        out
    }

    /// `dst[j] += src[j]`, 128-bit lanes.
    pub unsafe fn add_assign_sse2(dst: &mut [f32], src: &[f32]) {
        let m = dst.len();
        let mut j = 0;
        while j + 4 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm_storeu_ps(p, _mm_add_ps(_mm_loadu_ps(p), _mm_loadu_ps(src.as_ptr().add(j))));
            j += 4;
        }
        while j < m {
            dst[j] += src[j];
            j += 1;
        }
    }

    /// `dst[j] += src[j]`, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_avx2(dst: &mut [f32], src: &[f32]) {
        let m = dst.len();
        let mut j = 0;
        while j + 8 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm256_storeu_ps(
                p,
                _mm256_add_ps(_mm256_loadu_ps(p), _mm256_loadu_ps(src.as_ptr().add(j))),
            );
            j += 8;
        }
        while j < m {
            dst[j] += src[j];
            j += 1;
        }
    }

    /// `dst[j] *= k`, 128-bit lanes.
    pub unsafe fn scale_sse2(dst: &mut [f32], k: f32) {
        let m = dst.len();
        let vk = _mm_set1_ps(k);
        let mut j = 0;
        while j + 4 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm_storeu_ps(p, _mm_mul_ps(_mm_loadu_ps(p), vk));
            j += 4;
        }
        while j < m {
            dst[j] *= k;
            j += 1;
        }
    }

    /// `dst[j] *= k`, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_avx2(dst: &mut [f32], k: f32) {
        let m = dst.len();
        let vk = _mm256_set1_ps(k);
        let mut j = 0;
        while j + 8 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm256_storeu_ps(p, _mm256_mul_ps(_mm256_loadu_ps(p), vk));
            j += 8;
        }
        while j < m {
            dst[j] *= k;
            j += 1;
        }
    }

    /// `dst[j] /= d`, 128-bit lanes (true per-lane division, never a
    /// reciprocal multiply — the quotient must match scalar `/` bitwise).
    pub unsafe fn div_sse2(dst: &mut [f32], d: f32) {
        let m = dst.len();
        let vd = _mm_set1_ps(d);
        let mut j = 0;
        while j + 4 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm_storeu_ps(p, _mm_div_ps(_mm_loadu_ps(p), vd));
            j += 4;
        }
        while j < m {
            dst[j] /= d;
            j += 1;
        }
    }

    /// `dst[j] /= d`, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn div_avx2(dst: &mut [f32], d: f32) {
        let m = dst.len();
        let vd = _mm256_set1_ps(d);
        let mut j = 0;
        while j + 8 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm256_storeu_ps(p, _mm256_div_ps(_mm256_loadu_ps(p), vd));
            j += 8;
        }
        while j < m {
            dst[j] /= d;
            j += 1;
        }
    }

    /// `dst[j] = dst[j].max(0.0)`, 128-bit lanes. `maxps(x, +0.0)` matches
    /// the scalar `f32::max(x, 0.0)` lowering bit-for-bit: NaN → +0.0 and
    /// −0.0 → +0.0 in both (the zero operand is the second source), which
    /// the unit tests below pin.
    pub unsafe fn relu_sse2(dst: &mut [f32]) {
        let m = dst.len();
        let zero = _mm_setzero_ps();
        let mut j = 0;
        while j + 4 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm_storeu_ps(p, _mm_max_ps(_mm_loadu_ps(p), zero));
            j += 4;
        }
        while j < m {
            dst[j] = dst[j].max(0.0);
            j += 1;
        }
    }

    /// `dst[j] = dst[j].max(0.0)`, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn relu_avx2(dst: &mut [f32]) {
        let m = dst.len();
        let zero = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= m {
            let p = dst.as_mut_ptr().add(j);
            _mm256_storeu_ps(p, _mm256_max_ps(_mm256_loadu_ps(p), zero));
            j += 8;
        }
        while j < m {
            dst[j] = dst[j].max(0.0);
            j += 1;
        }
    }

    /// `out[j] = a[j]*b[j] + c[j]*d[j]`, 128-bit lanes.
    pub unsafe fn mul2_add_sse2(out: &mut [f32], a: &[f32], b: &[f32], c: &[f32], d: &[f32]) {
        let m = out.len();
        let mut j = 0;
        while j + 4 <= m {
            let t = _mm_add_ps(
                _mm_mul_ps(_mm_loadu_ps(a.as_ptr().add(j)), _mm_loadu_ps(b.as_ptr().add(j))),
                _mm_mul_ps(_mm_loadu_ps(c.as_ptr().add(j)), _mm_loadu_ps(d.as_ptr().add(j))),
            );
            _mm_storeu_ps(out.as_mut_ptr().add(j), t);
            j += 4;
        }
        while j < m {
            out[j] = a[j] * b[j] + c[j] * d[j];
            j += 1;
        }
    }

    /// `out[j] = a[j]*b[j] + c[j]*d[j]`, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul2_add_avx2(out: &mut [f32], a: &[f32], b: &[f32], c: &[f32], d: &[f32]) {
        let m = out.len();
        let mut j = 0;
        while j + 8 <= m {
            let t = _mm256_add_ps(
                _mm256_mul_ps(
                    _mm256_loadu_ps(a.as_ptr().add(j)),
                    _mm256_loadu_ps(b.as_ptr().add(j)),
                ),
                _mm256_mul_ps(
                    _mm256_loadu_ps(c.as_ptr().add(j)),
                    _mm256_loadu_ps(d.as_ptr().add(j)),
                ),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(j), t);
            j += 8;
        }
        while j < m {
            out[j] = a[j] * b[j] + c[j] * d[j];
            j += 1;
        }
    }

    /// `out[j] = a[j]*b[j]`, 128-bit lanes.
    pub unsafe fn mul_sse2(out: &mut [f32], a: &[f32], b: &[f32]) {
        let m = out.len();
        let mut j = 0;
        while j + 4 <= m {
            let t =
                _mm_mul_ps(_mm_loadu_ps(a.as_ptr().add(j)), _mm_loadu_ps(b.as_ptr().add(j)));
            _mm_storeu_ps(out.as_mut_ptr().add(j), t);
            j += 4;
        }
        while j < m {
            out[j] = a[j] * b[j];
            j += 1;
        }
    }

    /// `out[j] = a[j]*b[j]`, 256-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_avx2(out: &mut [f32], a: &[f32], b: &[f32]) {
        let m = out.len();
        let mut j = 0;
        while j + 8 <= m {
            let t = _mm256_mul_ps(
                _mm256_loadu_ps(a.as_ptr().add(j)),
                _mm256_loadu_ps(b.as_ptr().add(j)),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(j), t);
            j += 8;
        }
        while j < m {
            out[j] = a[j] * b[j];
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatchers. Each takes an explicit level so tests and benchmarks can pin
// an arm without touching process-global state; the plain names use the
// process-wide `level()`.
// ---------------------------------------------------------------------------

/// `r_i[j] += a_i * b[j]` for four rows, at an explicit level.
#[allow(clippy::too_many_arguments)]
pub fn axpy4_at(
    lvl: SimdLevel,
    r0: &mut [f32],
    r1: &mut [f32],
    r2: &mut [f32],
    r3: &mut [f32],
    a0: f32,
    a1: f32,
    a2: f32,
    a3: f32,
    b: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::axpy4_avx2(r0, r1, r2, r3, a0, a1, a2, a3, b) },
        SimdLevel::Sse2 => return unsafe { x86::axpy4_sse2(r0, r1, r2, r3, a0, a1, a2, a3, b) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    axpy4_scalar(r0, r1, r2, r3, a0, a1, a2, a3, b);
}

/// `out[j] += a * b[j]`, at an explicit level.
pub fn axpy_at(lvl: SimdLevel, out: &mut [f32], a: f32, b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::axpy_avx2(out, a, b) },
        SimdLevel::Sse2 => return unsafe { x86::axpy_sse2(out, a, b) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    axpy_scalar(out, a, b);
}

/// `out[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]`, at an explicit
/// level.
#[allow(clippy::too_many_arguments)]
pub fn axpy4_shared_at(
    lvl: SimdLevel,
    out: &mut [f32],
    a0: f32,
    a1: f32,
    a2: f32,
    a3: f32,
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => {
            return unsafe { x86::axpy4_shared_avx2(out, a0, a1, a2, a3, b0, b1, b2, b3) }
        }
        SimdLevel::Sse2 => {
            return unsafe { x86::axpy4_shared_sse2(out, a0, a1, a2, a3, b0, b1, b2, b3) }
        }
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    axpy4_shared_scalar(out, a0, a1, a2, a3, b0, b1, b2, b3);
}

/// All `m` dot products of `x` (length `k`) against the rows of row-major
/// `b` (`m × k`), appended to `out` — the inner loop of the narrow-left
/// direct-dot kernel. Each output element is one serial ascending-`l` fold,
/// identical across levels; the levels differ only in how many independent
/// outputs they fold at once (1 / 4 / 8).
pub fn dot_rows_at(lvl: SimdLevel, x: &[f32], b: &[f32], k: usize, m: usize, out: &mut Vec<f32>) {
    let mut j = 0;
    #[cfg(target_arch = "x86_64")]
    {
        if lvl >= SimdLevel::Avx2 {
            while j + 8 <= m {
                let r = unsafe {
                    x86::dot8_avx2(
                        x,
                        &b[j * k..(j + 1) * k],
                        &b[(j + 1) * k..(j + 2) * k],
                        &b[(j + 2) * k..(j + 3) * k],
                        &b[(j + 3) * k..(j + 4) * k],
                        &b[(j + 4) * k..(j + 5) * k],
                        &b[(j + 5) * k..(j + 6) * k],
                        &b[(j + 6) * k..(j + 7) * k],
                        &b[(j + 7) * k..(j + 8) * k],
                    )
                };
                out.extend_from_slice(&r);
                j += 8;
            }
        }
        if lvl >= SimdLevel::Sse2 {
            while j + 4 <= m {
                let r = unsafe {
                    x86::dot4_sse2(
                        x,
                        &b[j * k..(j + 1) * k],
                        &b[(j + 1) * k..(j + 2) * k],
                        &b[(j + 2) * k..(j + 3) * k],
                        &b[(j + 3) * k..(j + 4) * k],
                    )
                };
                out.extend_from_slice(&r);
                j += 4;
            }
        }
    }
    let _ = lvl;
    // Scalar path (and the j-tail of the vector paths): the original
    // 4-column blocked fold of `dot_kernel`, then plain dots.
    let full_j = j + (m - j) / 4 * 4;
    while j < full_j {
        let y0 = &b[j * k..(j + 1) * k];
        let y1 = &b[(j + 1) * k..(j + 2) * k];
        let y2 = &b[(j + 2) * k..(j + 3) * k];
        let y3 = &b[(j + 3) * k..(j + 4) * k];
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for l in 0..k {
            let xv = x[l];
            s0 += xv * y0[l];
            s1 += xv * y1[l];
            s2 += xv * y2[l];
            s3 += xv * y3[l];
        }
        out.extend_from_slice(&[s0, s1, s2, s3]);
        j += 4;
    }
    while j < m {
        let y = &b[j * k..(j + 1) * k];
        let mut s = 0.0f32;
        for l in 0..k {
            s += x[l] * y[l];
        }
        out.push(s);
        j += 1;
    }
}

/// `dst[j] += src[j]`, at an explicit level.
pub fn add_assign_at(lvl: SimdLevel, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::add_assign_avx2(dst, src) },
        SimdLevel::Sse2 => return unsafe { x86::add_assign_sse2(dst, src) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    for (x, &s) in dst.iter_mut().zip(src) {
        *x += s;
    }
}

/// `dst[j] += src[j]` at the process-wide level.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    add_assign_at(level(), dst, src);
}

/// `dst[j] *= k`, at an explicit level.
pub fn scale_at(lvl: SimdLevel, dst: &mut [f32], k: f32) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::scale_avx2(dst, k) },
        SimdLevel::Sse2 => return unsafe { x86::scale_sse2(dst, k) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    for x in dst.iter_mut() {
        *x *= k;
    }
}

/// `dst[j] *= k` at the process-wide level.
pub fn scale(dst: &mut [f32], k: f32) {
    scale_at(level(), dst, k);
}

/// `dst[j] /= d`, at an explicit level.
pub fn div_at(lvl: SimdLevel, dst: &mut [f32], d: f32) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::div_avx2(dst, d) },
        SimdLevel::Sse2 => return unsafe { x86::div_sse2(dst, d) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    for x in dst.iter_mut() {
        *x /= d;
    }
}

/// `dst[j] /= d` at the process-wide level.
pub fn div(dst: &mut [f32], d: f32) {
    div_at(level(), dst, d);
}

/// `dst[j] = dst[j].max(0.0)`, at an explicit level.
pub fn relu_at(lvl: SimdLevel, dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::relu_avx2(dst) },
        SimdLevel::Sse2 => return unsafe { x86::relu_sse2(dst) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    for x in dst.iter_mut() {
        *x = x.max(0.0);
    }
}

/// `dst[j] = dst[j].max(0.0)` at the process-wide level.
pub fn relu(dst: &mut [f32]) {
    relu_at(level(), dst);
}

/// `out[j] = a[j]*b[j] + c[j]*d[j]`, at an explicit level (the LSTM cell
/// update `f ⊙ c_prev + i ⊙ g`).
pub fn mul2_add_at(lvl: SimdLevel, out: &mut [f32], a: &[f32], b: &[f32], c: &[f32], d: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::mul2_add_avx2(out, a, b, c, d) },
        SimdLevel::Sse2 => return unsafe { x86::mul2_add_sse2(out, a, b, c, d) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    for j in 0..out.len() {
        out[j] = a[j] * b[j] + c[j] * d[j];
    }
}

/// `out[j] = a[j]*b[j] + c[j]*d[j]` at the process-wide level.
pub fn mul2_add(out: &mut [f32], a: &[f32], b: &[f32], c: &[f32], d: &[f32]) {
    mul2_add_at(level(), out, a, b, c, d);
}

/// `out[j] = a[j]*b[j]`, at an explicit level (the LSTM output gate
/// `o ⊙ tanh(c)`).
pub fn mul_at(lvl: SimdLevel, out: &mut [f32], a: &[f32], b: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::mul_avx2(out, a, b) },
        SimdLevel::Sse2 => return unsafe { x86::mul_sse2(out, a, b) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    for j in 0..out.len() {
        out[j] = a[j] * b[j];
    }
}

/// `out[j] = a[j]*b[j]` at the process-wide level.
pub fn mul(out: &mut [f32], a: &[f32], b: &[f32]) {
    mul_at(level(), out, a, b);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|&l| l <= detected_level())
            .collect()
    }

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn relu_matches_scalar_on_special_values() {
        // −0.0 and NaN are exactly where `maxps` could diverge from the
        // scalar lowering of `f32::max(x, 0.0)`; pin them bit-for-bit.
        let specials = [-0.0f32, 0.0, f32::NAN, -f32::NAN, 1.5, -1.5, f32::MIN_POSITIVE];
        for lvl in levels() {
            for pad in 0..9 {
                let mut base: Vec<f32> = specials.to_vec();
                base.extend(std::iter::repeat_n(-0.0, pad));
                let mut scalar = base.clone();
                for x in scalar.iter_mut() {
                    *x = x.max(0.0);
                }
                let mut vec = base.clone();
                relu_at(lvl, &mut vec);
                for (a, b) in scalar.iter().zip(&vec) {
                    assert_eq!(a.to_bits(), b.to_bits(), "level {lvl:?}");
                }
            }
        }
    }

    #[test]
    fn elementwise_kernels_bit_identical_across_levels() {
        for len in [0usize, 1, 3, 4, 7, 8, 15, 16, 31, 64, 129] {
            let a = pseudo(len, 1);
            let b = pseudo(len, 2);
            let c = pseudo(len, 3);
            let d = pseudo(len, 4);
            for lvl in levels() {
                let mut s = a.clone();
                add_assign_at(SimdLevel::Scalar, &mut s, &b);
                let mut v = a.clone();
                add_assign_at(lvl, &mut v, &b);
                assert!(s.iter().zip(&v).all(|(x, y)| x.to_bits() == y.to_bits()));

                let mut s = a.clone();
                scale_at(SimdLevel::Scalar, &mut s, 0.3);
                let mut v = a.clone();
                scale_at(lvl, &mut v, 0.3);
                assert!(s.iter().zip(&v).all(|(x, y)| x.to_bits() == y.to_bits()));

                let mut s = a.clone();
                div_at(SimdLevel::Scalar, &mut s, 0.7);
                let mut v = a.clone();
                div_at(lvl, &mut v, 0.7);
                assert!(s.iter().zip(&v).all(|(x, y)| x.to_bits() == y.to_bits()));

                let mut s = vec![0.0; len];
                mul2_add_at(SimdLevel::Scalar, &mut s, &a, &b, &c, &d);
                let mut v = vec![0.0; len];
                mul2_add_at(lvl, &mut v, &a, &b, &c, &d);
                assert!(s.iter().zip(&v).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
        }
    }

    #[test]
    fn dot_rows_bit_identical_across_levels() {
        for (k, m) in [(1usize, 1usize), (3, 5), (4, 8), (7, 9), (16, 20), (33, 13)] {
            let x = pseudo(k, 10);
            let b = pseudo(k * m, 11);
            let mut scalar = Vec::new();
            dot_rows_at(SimdLevel::Scalar, &x, &b, k, m, &mut scalar);
            for lvl in levels() {
                let mut v = Vec::new();
                dot_rows_at(lvl, &x, &b, k, m, &mut v);
                assert_eq!(scalar.len(), v.len());
                assert!(
                    scalar.iter().zip(&v).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "k={k} m={m} level {lvl:?}"
                );
            }
        }
    }

    #[test]
    fn set_level_clamps_to_detected() {
        let before = level();
        let got = set_level(SimdLevel::Avx2);
        assert!(got <= detected_level());
        set_level(before);
    }
}
