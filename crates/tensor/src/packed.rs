//! Pre-packed and int8-quantized weight matrices for the inference path.
//!
//! [`PackedMatrix`] stores a `k×m` weight matrix in panel-major order: the
//! columns are split into panels of [`NR`] = 8, and each panel holds its `k`
//! rows contiguously (`k × NR` values, zero-padded in the last panel). A
//! row-times-matrix product then walks each panel top to bottom with one
//! 8-lane accumulator — unit-stride loads, no per-call re-packing, and the
//! panel width matches the AVX2 register width.
//!
//! **Bit-identity.** Each output element is the same strict ascending fold
//! over the shared dimension as [`Tensor::matmul`]'s blocked kernel — one
//! multiply and one add per step, starting from 0 — so the packed product is
//! bit-identical to the unpacked one (and to the scalar kernel) for every
//! input. The zero padding never reaches the output: padded lanes accumulate
//! `a·0` into columns that are simply not copied out.
//!
//! [`QuantizedMatrix`] is the weight-only int8 form: one per-tensor scale
//! (`max|w| / 127`), symmetric round-to-nearest quantization, f32
//! activations and f32 accumulation of `a[l] · q[l]`, with the scale applied
//! once at the accumulator — so the only error versus f32 is the weight
//! rounding, bounded per element by `scale/2 · Σ|a[l]|`. Training never sees
//! either type; they are built lazily from the f32 store and invalidated on
//! every optimizer step.

use crate::simd::{self, SimdLevel};
use crate::Tensor;

/// Panel width of the packed layout (AVX2 register width in f32 lanes).
pub const NR: usize = 8;

/// A `k×m` weight matrix re-laid-out into column panels of [`NR`].
#[derive(Debug, Clone)]
pub struct PackedMatrix {
    k: usize,
    m: usize,
    /// `ceil(m/NR)` panels, each `k × NR` values, row-major inside a panel.
    panels: Vec<f32>,
}

impl PackedMatrix {
    /// Packs a row-major `k×m` buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != k * m`.
    pub fn pack(data: &[f32], k: usize, m: usize) -> Self {
        assert_eq!(data.len(), k * m, "PackedMatrix::pack: buffer is not {k}x{m}");
        let pc = m.div_ceil(NR);
        let mut panels = vec![0.0f32; k * pc * NR];
        for p in 0..pc {
            let j0 = p * NR;
            let w = NR.min(m - j0);
            let base = p * k * NR;
            for l in 0..k {
                panels[base + l * NR..base + l * NR + w]
                    .copy_from_slice(&data[l * m + j0..l * m + j0 + w]);
            }
        }
        PackedMatrix { k, m, panels }
    }

    /// Packs a tensor (rows = `k`, cols = `m`).
    pub fn from_tensor(t: &Tensor) -> Self {
        Self::pack(t.as_slice(), t.rows(), t.cols())
    }

    /// Shared dimension (`k`, the weight's row count).
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Output dimension (`m`, the weight's column count).
    pub fn cols(&self) -> usize {
        self.m
    }

    /// The raw panel buffer (used to derive the quantized form).
    pub(crate) fn panels(&self) -> &[f32] {
        &self.panels
    }

    /// `a @ self` at the process-wide SIMD level.
    pub fn matmul(&self, a: &Tensor) -> Tensor {
        self.matmul_at(simd::level(), a)
    }

    /// `a @ self` at an explicit SIMD level. Bit-identical to
    /// [`Tensor::matmul`] at every level.
    pub fn matmul_at(&self, lvl: SimdLevel, a: &Tensor) -> Tensor {
        assert_eq!(
            a.cols(),
            self.k,
            "PackedMatrix::matmul: {}x{} @ {}x{}",
            a.rows(),
            a.cols(),
            self.k,
            self.m
        );
        let (n, k, m) = (a.rows(), self.k, self.m);
        let mut data = crate::pool::take(n * m);
        data.resize(n * m, 0.0);
        let pc = m.div_ceil(NR);
        for i in 0..n {
            let ar = a.row(i);
            let out_row = &mut data[i * m..(i + 1) * m];
            for p in 0..pc {
                let j0 = p * NR;
                let w = NR.min(m - j0);
                let panel = &self.panels[p * k * NR..(p + 1) * k * NR];
                let acc = panel_dot_f32(lvl, ar, panel, k);
                out_row[j0..j0 + w].copy_from_slice(&acc[..w]);
            }
        }
        Tensor::from_vec(n, m, data)
    }
}

/// One `1×k @ k×NR` panel product: `acc[j] = Σ_l a[l] · panel[l][j]`, strict
/// ascending fold, one mul + one add per step.
fn panel_dot_f32(lvl: SimdLevel, a: &[f32], panel: &[f32], k: usize) -> [f32; NR] {
    #[cfg(target_arch = "x86_64")]
    match lvl {
        SimdLevel::Avx2 => return unsafe { x86::panel_dot_f32_avx2(a, panel, k) },
        SimdLevel::Sse2 => return unsafe { x86::panel_dot_f32_sse2(a, panel, k) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    let mut acc = [0.0f32; NR];
    for l in 0..k {
        let av = a[l];
        let row = &panel[l * NR..(l + 1) * NR];
        for j in 0..NR {
            acc[j] += av * row[j];
        }
    }
    acc
}

/// Weight-only int8 quantization of a packed matrix: symmetric per-tensor
/// scale, values in `[-127, 127]`.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    k: usize,
    m: usize,
    scale: f32,
    /// Same panel layout as [`PackedMatrix`], one byte per value.
    panels: Vec<i8>,
}

/// The symmetric per-tensor scale for a buffer: `max|x| / 127`, or `1.0`
/// for an all-zero (or non-finite) buffer so dequantization stays exact.
pub fn quant_scale(data: &[f32]) -> f32 {
    let max_abs = data.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
    if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes one value: round-to-nearest of `x / scale`, clamped to ±127.
pub fn quantize_one(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-127.0, 127.0) as i8
}

impl QuantizedMatrix {
    /// Quantizes an already-packed matrix. When `scale_override` is given
    /// (a checkpoint-preserved scale), it is used verbatim — re-quantizing a
    /// dequantized store with its own scale is then lossless.
    pub fn from_packed(p: &PackedMatrix, scale_override: Option<f32>) -> Self {
        let scale = scale_override.unwrap_or_else(|| quant_scale(p.panels()));
        let panels = p.panels().iter().map(|&x| quantize_one(x, scale)).collect();
        QuantizedMatrix { k: p.k, m: p.m, scale, panels }
    }

    /// Quantizes a row-major `k×m` buffer.
    pub fn quantize(data: &[f32], k: usize, m: usize, scale_override: Option<f32>) -> Self {
        Self::from_packed(&PackedMatrix::pack(data, k, m), scale_override)
    }

    /// Shared dimension (`k`).
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Output dimension (`m`).
    pub fn cols(&self) -> usize {
        self.m
    }

    /// The per-tensor scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// `a @ self` at the process-wide SIMD level.
    pub fn matmul(&self, a: &Tensor) -> Tensor {
        self.matmul_at(simd::level(), a)
    }

    /// `a @ self` at an explicit SIMD level: f32 accumulation of
    /// `a[l] · (q[l] as f32)` in ascending order, one multiply by the scale
    /// at the accumulator. Bit-identical across levels.
    pub fn matmul_at(&self, lvl: SimdLevel, a: &Tensor) -> Tensor {
        assert_eq!(
            a.cols(),
            self.k,
            "QuantizedMatrix::matmul: {}x{} @ {}x{}",
            a.rows(),
            a.cols(),
            self.k,
            self.m
        );
        let (n, k, m) = (a.rows(), self.k, self.m);
        let mut data = crate::pool::take(n * m);
        data.resize(n * m, 0.0);
        let pc = m.div_ceil(NR);
        for i in 0..n {
            let ar = a.row(i);
            let out_row = &mut data[i * m..(i + 1) * m];
            for p in 0..pc {
                let j0 = p * NR;
                let w = NR.min(m - j0);
                let panel = &self.panels[p * k * NR..(p + 1) * k * NR];
                let acc = panel_dot_i8(lvl, ar, panel, k, self.scale);
                out_row[j0..j0 + w].copy_from_slice(&acc[..w]);
            }
        }
        Tensor::from_vec(n, m, data)
    }
}

/// One int8 panel product: `acc[j] = scale · Σ_l a[l] · (q[l][j] as f32)`.
/// The int8→f32 conversion is exact, the fold is ascending with separate
/// mul/add, and the scale is applied once at the end. The SSE2 tier reuses
/// the scalar body (the 8-byte sign-extend needs SSE4.1+; the scalar loop
/// already auto-vectorizes acceptably there).
fn panel_dot_i8(lvl: SimdLevel, a: &[f32], panel: &[i8], k: usize, scale: f32) -> [f32; NR] {
    #[cfg(target_arch = "x86_64")]
    if lvl == SimdLevel::Avx2 {
        return unsafe { x86::panel_dot_i8_avx2(a, panel, k, scale) };
    }
    let _ = lvl;
    let mut acc = [0.0f32; NR];
    for l in 0..k {
        let av = a[l];
        let row = &panel[l * NR..(l + 1) * NR];
        for j in 0..NR {
            acc[j] += av * (row[j] as f32);
        }
    }
    for v in acc.iter_mut() {
        *v *= scale;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::NR;
    use core::arch::x86_64::*;

    /// 8-lane f32 panel fold: `acc = acc + broadcast(a[l]) · panel_row(l)`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn panel_dot_f32_avx2(a: &[f32], panel: &[f32], k: usize) -> [f32; NR] {
        let mut acc = _mm256_setzero_ps();
        for (l, &al) in a[..k].iter().enumerate() {
            let row = _mm256_loadu_ps(panel.as_ptr().add(l * NR));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(al), row));
        }
        let mut out = [0.0f32; NR];
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
        out
    }

    /// Two 4-lane f32 panel folds covering the 8-wide panel.
    pub unsafe fn panel_dot_f32_sse2(a: &[f32], panel: &[f32], k: usize) -> [f32; NR] {
        let mut lo = _mm_setzero_ps();
        let mut hi = _mm_setzero_ps();
        for (l, &al) in a[..k].iter().enumerate() {
            let av = _mm_set1_ps(al);
            let rl = _mm_loadu_ps(panel.as_ptr().add(l * NR));
            let rh = _mm_loadu_ps(panel.as_ptr().add(l * NR + 4));
            lo = _mm_add_ps(lo, _mm_mul_ps(av, rl));
            hi = _mm_add_ps(hi, _mm_mul_ps(av, rh));
        }
        let mut out = [0.0f32; NR];
        _mm_storeu_ps(out.as_mut_ptr(), lo);
        _mm_storeu_ps(out.as_mut_ptr().add(4), hi);
        out
    }

    /// 8-lane int8 panel fold: sign-extend 8 bytes to i32, convert to f32
    /// (both exact), then the same mul/add fold; scale applied once at the
    /// end per lane, matching the scalar body.
    #[target_feature(enable = "avx2")]
    pub unsafe fn panel_dot_i8_avx2(a: &[f32], panel: &[i8], k: usize, scale: f32) -> [f32; NR] {
        let mut acc = _mm256_setzero_ps();
        for (l, &al) in a[..k].iter().enumerate() {
            let q8 = _mm_loadl_epi64(panel.as_ptr().add(l * NR) as *const __m128i);
            let q32 = _mm256_cvtepi8_epi32(q8);
            let qf = _mm256_cvtepi32_ps(q32);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(al), qf));
        }
        acc = _mm256_mul_ps(acc, _mm256_set1_ps(scale));
        let mut out = [0.0f32; NR];
        _mm256_storeu_ps(out.as_mut_ptr(), acc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::detected_level;

    fn pseudo_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn levels() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|&l| l <= detected_level())
            .collect()
    }

    #[test]
    fn packed_matmul_bit_identical_to_blocked() {
        for &(n, k, m) in &[(1, 1, 1), (1, 7, 5), (3, 8, 8), (4, 13, 17), (9, 5, 24), (2, 64, 33)]
        {
            let a = pseudo_tensor(n, k, 3 + n as u64);
            let w = pseudo_tensor(k, m, 17 + m as u64);
            let expect = a.matmul(&w);
            let packed = PackedMatrix::from_tensor(&w);
            for lvl in levels() {
                let got = packed.matmul_at(lvl, &a);
                assert_eq!(got.shape(), expect.shape());
                for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{n}x{k}x{m} at {lvl:?}");
                }
            }
        }
    }

    #[test]
    fn quantized_matmul_bit_identical_across_levels_and_bounded() {
        for &(n, k, m) in &[(1, 8, 8), (2, 7, 9), (4, 16, 24), (1, 64, 30)] {
            let a = pseudo_tensor(n, k, 5 + k as u64);
            let w = pseudo_tensor(k, m, 29 + m as u64);
            let q = QuantizedMatrix::quantize(w.as_slice(), k, m, None);
            let scalar = q.matmul_at(SimdLevel::Scalar, &a);
            for lvl in levels() {
                let got = q.matmul_at(lvl, &a);
                for (x, y) in got.as_slice().iter().zip(scalar.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{n}x{k}x{m} at {lvl:?}");
                }
            }
            // Error budget: per element |q_out - f_out| <= scale/2 · Σ|a_l|
            // (weight rounding) plus accumulation slack.
            let f = a.matmul(&w);
            for i in 0..n {
                let sum_abs: f32 = a.row(i).iter().map(|x| x.abs()).sum();
                let budget = 0.5 * q.scale() * sum_abs * 1.01 + 1e-5;
                for j in 0..m {
                    let d = (scalar.get(i, j) - f.get(i, j)).abs();
                    assert!(d <= budget, "{n}x{k}x{m} [{i},{j}]: |Δ|={d} > {budget}");
                }
            }
        }
    }

    #[test]
    fn requantize_with_preserved_scale_is_lossless() {
        let w = pseudo_tensor(9, 13, 99);
        let q = QuantizedMatrix::quantize(w.as_slice(), 9, 13, None);
        // Dequantize (what a checkpoint load does) …
        let deq: Vec<f32> = w
            .as_slice()
            .iter()
            .map(|&x| quantize_one(x, q.scale()) as f32 * q.scale())
            .collect();
        // … then re-quantize with the preserved scale: must give back the
        // same integers.
        let q2 = QuantizedMatrix::quantize(&deq, 9, 13, Some(q.scale()));
        assert_eq!(q.scale().to_bits(), q2.scale().to_bits());
        assert_eq!(q.panels, q2.panels);
    }

    #[test]
    fn quant_scale_guards_zero() {
        assert_eq!(quant_scale(&[0.0, -0.0]), 1.0);
        assert_eq!(quant_scale(&[]), 1.0);
    }
}
