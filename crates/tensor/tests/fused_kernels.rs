//! Proptest oracles for the fused kernels: each fused node must agree
//! **bit-for-bit** with the explicitly composed unfused chain it replaces —
//! forward values, loss, and parameter gradients. That includes the ReLU
//! activation, whose kink excludes it from the central-difference checks in
//! `graph.rs`: exact equivalence against the unfused `relu` node needs no
//! smoothness.
//!
//! The comparisons compose the unfused ops explicitly rather than flipping
//! the process-global fusion flag, which would race against other test
//! threads.

use proptest::prelude::*;
use valuenet_tensor::{Activation, Graph, Tensor, Var};

const DIM: std::ops::Range<usize> = 1..12;

/// Deterministic pseudo-random tensor (SplitMix64 stream) so shape and seed
/// fully determine contents.
fn pseudo_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 23) as f32 * 8.0 - 4.0
    };
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

/// Scalar loss that weights every output element differently, so backward
/// sees a non-uniform upstream gradient (a plain `sum_all` would feed the
/// softmax backward an all-ones gradient, which it annihilates).
fn weighted_loss(g: &mut Graph, y: Var, seed: u64) -> Var {
    let (r, c) = g.value(y).shape();
    let wt = g.input(pseudo_tensor(r, c, seed));
    let p = g.mul(y, wt);
    g.sum_all(p)
}

fn assert_bits_eq(fused: &Tensor, unfused: &Tensor, what: &str) {
    assert_eq!(fused.shape(), unfused.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in fused.as_slice().iter().zip(unfused.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs bitwise ({x} vs {y})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul_bias_act` ≡ matmul → add_broadcast_row → activation, for all
    /// four activations, with and without bias, values and gradients.
    #[test]
    fn fused_matmul_bias_act_matches_unfused(
        (n, k, m) in (DIM, DIM, DIM),
        act_idx in 0usize..4,
        with_bias in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let act =
            [Activation::None, Activation::Tanh, Activation::Sigmoid, Activation::Relu][act_idx];
        let ta = pseudo_tensor(n, k, seed);
        let tw = pseudo_tensor(k, m, seed ^ 0x55);
        let tb = pseudo_tensor(1, m, seed ^ 0xAA);

        let mut g = Graph::new();
        let a = g.param(ta.clone(), 0);
        let w = g.param(tw.clone(), 1);
        let b = if with_bias { Some(g.param(tb.clone(), 2)) } else { None };
        let y = g.matmul_bias_act(a, w, b, act);
        let y_fused = g.value(y).clone();
        let loss = weighted_loss(&mut g, y, seed ^ 0xF00D);
        let loss_fused = g.value(loss).scalar_value();
        let grads_fused = g.backward(loss);

        let mut g = Graph::new();
        let a = g.param(ta, 0);
        let w = g.param(tw, 1);
        let mut y = g.matmul(a, w);
        if with_bias {
            let b = g.param(tb, 2);
            y = g.add_broadcast_row(y, b);
        }
        let y = match act {
            Activation::None => y,
            Activation::Tanh => g.tanh(y),
            Activation::Sigmoid => g.sigmoid(y),
            Activation::Relu => g.relu(y),
        };
        assert_bits_eq(&y_fused, g.value(y), "forward");
        let loss = weighted_loss(&mut g, y, seed ^ 0xF00D);
        prop_assert_eq!(loss_fused.to_bits(), g.value(loss).scalar_value().to_bits());
        let grads = g.backward(loss);
        assert_bits_eq(&grads_fused.for_param(0).unwrap(), &grads.for_param(0).unwrap(), "d_input");
        assert_bits_eq(&grads_fused.for_param(1).unwrap(), &grads.for_param(1).unwrap(), "d_weight");
        if with_bias {
            assert_bits_eq(
                &grads_fused.for_param(2).unwrap(),
                &grads.for_param(2).unwrap(),
                "d_bias",
            );
        }
    }

    /// `attn_softmax` ≡ transpose → matmul → scale → (+ mask) → softmax_rows,
    /// values and gradients for both query and keys, with and without a
    /// 0/−1e9 grammar-style mask.
    #[test]
    fn fused_attn_softmax_matches_unfused(
        (n, m, d) in (DIM, DIM, DIM),
        with_mask in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let tq = pseudo_tensor(n, d, seed);
        let tk = pseudo_tensor(m, d, seed ^ 0x77);
        // A 0/−1e9 pattern like the decoder's grammar masks, with at least
        // one open slot per row so every softmax stays finite.
        let mut tm = Tensor::zeros(n, m);
        for r in 0..n {
            for c in 0..m {
                if c != r % m && (seed >> ((r * 7 + c * 3) % 31)) & 1 == 0 {
                    tm.set(r, c, -1e9);
                }
            }
        }
        let scale = 1.0 / (d as f32).sqrt();

        let mut g = Graph::new();
        let q = g.param(tq.clone(), 0);
        let k = g.param(tk.clone(), 1);
        let mask = if with_mask { Some(g.input(tm.clone())) } else { None };
        let y = g.attn_softmax(q, k, scale, mask);
        let y_fused = g.value(y).clone();
        let loss = weighted_loss(&mut g, y, seed ^ 0xBEEF);
        let loss_fused = g.value(loss).scalar_value();
        let grads_fused = g.backward(loss);

        let mut g = Graph::new();
        let q = g.param(tq, 0);
        let k = g.param(tk, 1);
        let kt = g.transpose(k);
        let raw = g.matmul(q, kt);
        let mut s = g.scale(raw, scale);
        if with_mask {
            let mv = g.input(tm);
            s = g.add(s, mv);
        }
        let y = g.softmax_rows(s);
        assert_bits_eq(&y_fused, g.value(y), "forward");
        let loss = weighted_loss(&mut g, y, seed ^ 0xBEEF);
        prop_assert_eq!(loss_fused.to_bits(), g.value(loss).scalar_value().to_bits());
        let grads = g.backward(loss);
        assert_bits_eq(&grads_fused.for_param(0).unwrap(), &grads.for_param(0).unwrap(), "d_query");
        assert_bits_eq(&grads_fused.for_param(1).unwrap(), &grads.for_param(1).unwrap(), "d_keys");
    }

    /// `matmul_transposed_b` ≡ transpose → matmul: forward, loss, and both
    /// operand gradients bitwise.
    #[test]
    fn matmul_transposed_b_matches_transpose_matmul(
        (n, k, m) in (DIM, DIM, DIM),
        seed in 0u64..1000,
    ) {
        let ta = pseudo_tensor(n, k, seed);
        let tb = pseudo_tensor(m, k, seed ^ 0x66);

        let mut g = Graph::new();
        let a = g.param(ta.clone(), 0);
        let b = g.param(tb.clone(), 1);
        let y = g.matmul_transposed_b(a, b);
        let y_fused = g.value(y).clone();
        let loss = weighted_loss(&mut g, y, seed ^ 0xD00D);
        let loss_fused = g.value(loss).scalar_value();
        let grads_fused = g.backward(loss);

        let mut g = Graph::new();
        let a = g.param(ta, 0);
        let b = g.param(tb, 1);
        let bt = g.transpose(b);
        let y = g.matmul(a, bt);
        assert_bits_eq(&y_fused, g.value(y), "forward");
        let loss = weighted_loss(&mut g, y, seed ^ 0xD00D);
        prop_assert_eq!(loss_fused.to_bits(), g.value(loss).scalar_value().to_bits());
        let grads = g.backward(loss);
        assert_bits_eq(&grads_fused.for_param(0).unwrap(), &grads.for_param(0).unwrap(), "d_a");
        assert_bits_eq(&grads_fused.for_param(1).unwrap(), &grads.for_param(1).unwrap(), "d_b");
    }

    /// `lstm_gates` ≡ the thirteen-node slice/sigmoid/tanh/mul/add chain:
    /// both outputs (h and c), the loss, and the gradients of both the gate
    /// pre-activations and the previous cell state, all bitwise. Both
    /// outputs feed the loss so backward exercises the c-gradient
    /// accumulation across the two fused nodes.
    #[test]
    fn fused_lstm_gates_match_unfused(
        (b, h) in (DIM, DIM),
        seed in 0u64..1000,
    ) {
        let tz = pseudo_tensor(b, 4 * h, seed);
        let tc = pseudo_tensor(b, h, seed ^ 0x33);

        let mut g = Graph::new();
        let z = g.param(tz.clone(), 0);
        let c_prev = g.param(tc.clone(), 1);
        let (h_out, c) = g.lstm_gates(z, c_prev);
        let h_fused = g.value(h_out).clone();
        let c_fused = g.value(c).clone();
        let lh = weighted_loss(&mut g, h_out, seed ^ 0x1CE);
        let lc = weighted_loss(&mut g, c, seed ^ 0x2CE);
        let loss = g.add(lh, lc);
        let loss_fused = g.value(loss).scalar_value();
        let grads_fused = g.backward(loss);

        let mut g = Graph::new();
        let z = g.param(tz, 0);
        let c_prev = g.param(tc, 1);
        let i_g = g.slice_cols(z, 0, h);
        let f_g = g.slice_cols(z, h, 2 * h);
        let g_g = g.slice_cols(z, 2 * h, 3 * h);
        let o_g = g.slice_cols(z, 3 * h, 4 * h);
        let i = g.sigmoid(i_g);
        let f = g.sigmoid(f_g);
        let cand = g.tanh(g_g);
        let o = g.sigmoid(o_g);
        let fc = g.mul(f, c_prev);
        let ic = g.mul(i, cand);
        let c = g.add(fc, ic);
        let tc_ = g.tanh(c);
        let h_out = g.mul(o, tc_);
        assert_bits_eq(&h_fused, g.value(h_out), "forward h");
        assert_bits_eq(&c_fused, g.value(c), "forward c");
        let lh = weighted_loss(&mut g, h_out, seed ^ 0x1CE);
        let lc = weighted_loss(&mut g, c, seed ^ 0x2CE);
        let loss = g.add(lh, lc);
        prop_assert_eq!(loss_fused.to_bits(), g.value(loss).scalar_value().to_bits());
        let grads = g.backward(loss);
        assert_bits_eq(&grads_fused.for_param(0).unwrap(), &grads.for_param(0).unwrap(), "d_z");
        assert_bits_eq(&grads_fused.for_param(1).unwrap(), &grads.for_param(1).unwrap(), "d_c_prev");
    }

    /// `log_softmax_nll` ≡ log_softmax_rows → nll_loss, loss value and input
    /// gradient, over random shapes and per-row targets.
    #[test]
    fn fused_log_softmax_nll_matches_unfused(
        (n, m) in (DIM, DIM),
        seed in 0u64..1000,
    ) {
        let tx = pseudo_tensor(n, m, seed);
        let targets: Vec<usize> = (0..n).map(|r| (seed as usize + 13 * r) % m).collect();

        let mut g = Graph::new();
        let x = g.param(tx.clone(), 0);
        let loss = g.log_softmax_nll(x, &targets);
        let loss_fused = g.value(loss).scalar_value();
        let grads_fused = g.backward(loss);

        let mut g = Graph::new();
        let x = g.param(tx, 0);
        let lp = g.log_softmax_rows(x);
        let loss = g.nll_loss(lp, &targets);
        prop_assert_eq!(loss_fused.to_bits(), g.value(loss).scalar_value().to_bits());
        let grads = g.backward(loss);
        assert_bits_eq(&grads_fused.for_param(0).unwrap(), &grads.for_param(0).unwrap(), "d_x");
    }
}
