//! Property tests for the pre-packed f32 layout and the int8 weight-only
//! quantized kernel.
//!
//! * Packing is a pure layout change: `PackedMatrix::matmul` must be
//!   **bit-identical** to the row-major blocked matmul at every SIMD tier.
//! * Quantization changes the weights, not the arithmetic discipline: the
//!   int8 kernel must be bit-identical *across tiers*, and its error
//!   against the f32 oracle must stay inside the analytic budget
//!   `0.5 · scale · Σ|a_l|` per output element (each weight is off by at
//!   most half a quantization step).
//! * Re-quantizing a dequantized store with its preserved scale is
//!   lossless — the invariant the int8 checkpoint round trip relies on.

use proptest::prelude::*;
use valuenet_tensor::packed::{quant_scale, quantize_one, PackedMatrix, QuantizedMatrix};
use valuenet_tensor::simd::{self, SimdLevel};
use valuenet_tensor::Tensor;

fn levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= simd::detected_level())
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}: bit divergence at {i}: {x} vs {y}");
    }
}

fn pseudo_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 23) as f32 * 8.0 - 4.0
    };
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}

/// Batch sizes pin `n == 1` every third case — the beam-step shape.
fn batch(n: usize, seed: u64) -> usize {
    if seed.is_multiple_of(3) {
        1
    } else {
        n
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed f32 matmul ≡ blocked matmul, bit for bit, at every tier and
    /// for every panel-tail residue (`m % 8`).
    #[test]
    fn packed_matmul_is_bit_identical(
        (n, k, m) in (1usize..7, 1usize..40, 1usize..40),
        seed in 0u64..1000,
    ) {
        let n = batch(n, seed);
        let a = pseudo_tensor(n, k, seed);
        let w = pseudo_tensor(k, m, seed ^ 0xFACE);
        let want = a.matmul_with_level(&w, SimdLevel::Scalar);
        let packed = PackedMatrix::from_tensor(&w);
        prop_assert_eq!(packed.rows(), k);
        prop_assert_eq!(packed.cols(), m);
        for lvl in levels() {
            assert_bits_eq(
                packed.matmul_at(lvl, &a).as_slice(),
                want.as_slice(),
                &format!("packed {} ({n}x{k}x{m})", lvl.name()),
            );
        }
    }

    /// The int8 kernel is bit-identical across tiers and within the
    /// half-step error budget of the f32 oracle.
    #[test]
    fn quantized_matmul_levels_agree_and_bound_error(
        (n, k, m) in (1usize..7, 1usize..40, 1usize..40),
        seed in 0u64..1000,
    ) {
        let n = batch(n, seed);
        let a = pseudo_tensor(n, k, seed.wrapping_mul(3));
        let w = pseudo_tensor(k, m, seed.wrapping_mul(5) ^ 0xD00D);
        let quant = QuantizedMatrix::quantize(w.as_slice(), k, m, None);
        let reference = quant.matmul_at(SimdLevel::Scalar, &a);
        for lvl in levels() {
            assert_bits_eq(
                quant.matmul_at(lvl, &a).as_slice(),
                reference.as_slice(),
                &format!("quantized {} ({n}x{k}x{m})", lvl.name()),
            );
        }

        let oracle = a.matmul_with_level(&w, SimdLevel::Scalar);
        let scale = quant.scale();
        for i in 0..n {
            // Half a quantization step per weight, summed over the fold,
            // plus 1% + epsilon headroom for the accumulation rounding.
            let budget: f32 =
                a.row(i).iter().map(|v| v.abs()).sum::<f32>() * 0.5 * scale * 1.01 + 1e-5;
            for j in 0..m {
                let err = (reference.get(i, j) - oracle.get(i, j)).abs();
                prop_assert!(
                    err <= budget,
                    "quantized error {} exceeds budget {} at ({},{}) ({}x{}x{}, scale {})",
                    err, budget, i, j, n, k, m, scale
                );
            }
        }
    }

    /// Quantize → dequantize → re-quantize with the preserved scale
    /// reproduces the exact same codes: matmul outputs are bit-identical.
    /// This is what makes the int8 checkpoint round trip idempotent.
    #[test]
    fn requantize_with_preserved_scale_is_lossless(
        (k, m) in (1usize..30, 1usize..30),
        seed in 0u64..1000,
    ) {
        let w = pseudo_tensor(k, m, seed ^ 0xC0DE);
        let scale = quant_scale(w.as_slice());
        let dequant: Vec<f32> = w
            .as_slice()
            .iter()
            .map(|&x| quantize_one(x, scale) as f32 * scale)
            .collect();
        let original = QuantizedMatrix::quantize(w.as_slice(), k, m, None);
        let requant = QuantizedMatrix::quantize(&dequant, k, m, Some(scale));
        prop_assert_eq!(original.scale().to_bits(), requant.scale().to_bits());

        let a = pseudo_tensor(2, k, seed ^ 0xABBA);
        assert_bits_eq(
            requant.matmul_at(SimdLevel::Scalar, &a).as_slice(),
            original.matmul_at(SimdLevel::Scalar, &a).as_slice(),
            "requantized matmul",
        );
    }
}
