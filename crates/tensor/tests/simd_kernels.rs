//! Property tests: every SIMD kernel tier is **bit-identical** to the
//! scalar oracle.
//!
//! This is the load-bearing invariant of the vectorization work — the beam
//! search compares f32 log-probabilities for ties, so any rounding
//! difference between tiers would change predictions. Each kernel folds its
//! output elements in the same ascending order at every level (lanes span
//! *independent* outputs, never partial sums, and no FMA contraction), so
//! the contract here is `to_bits()` equality, not approximate closeness.
//!
//! Shapes are drawn from `1..` ranges on purpose: odd, non-lane-multiple
//! sizes exercise every tail path, and `n == 1` covers the single-row beam
//! step the decoder spends its time in.

use proptest::prelude::*;
use valuenet_tensor::simd::{self, SimdLevel};
use valuenet_tensor::Tensor;

const DIM: std::ops::Range<usize> = 1..12;

/// The levels this host can actually run, scalar first.
fn levels() -> Vec<SimdLevel> {
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= simd::detected_level())
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: bit divergence at {i}: {x} ({:#010x}) vs {y} ({:#010x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// Deterministic pseudo-random buffer (SplitMix64 stream). Values include
/// negatives and magnitudes around zero so `relu`'s `max(x, 0.0)` branch and
/// signed rounding are both exercised.
fn pseudo_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 23) as f32 * 8.0 - 4.0
    };
    (0..n).map(|_| next()).collect()
}

fn pseudo_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_vec(rows, cols, pseudo_vec(rows * cols, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Elementwise kernels (add_assign, scale, div, relu, mul, mul2_add)
    /// are bit-identical across tiers, including non-lane-multiple lengths.
    #[test]
    fn elementwise_kernels_bit_identical(len in 1usize..70, seed in 0u64..1000) {
        let a = pseudo_vec(len, seed);
        let b = pseudo_vec(len, seed ^ 0xA5A5);
        let c = pseudo_vec(len, seed ^ 0x5A5A);
        let d = pseudo_vec(len, seed ^ 0x0F0F);

        for lvl in levels() {
            let name = lvl.name();

            let mut want = a.clone();
            simd::add_assign_at(SimdLevel::Scalar, &mut want, &b);
            let mut got = a.clone();
            simd::add_assign_at(lvl, &mut got, &b);
            assert_bits_eq(&got, &want, &format!("add_assign {name}"));

            let mut want = a.clone();
            simd::scale_at(SimdLevel::Scalar, &mut want, 1.7);
            let mut got = a.clone();
            simd::scale_at(lvl, &mut got, 1.7);
            assert_bits_eq(&got, &want, &format!("scale {name}"));

            let mut want = a.clone();
            simd::div_at(SimdLevel::Scalar, &mut want, 3.1);
            let mut got = a.clone();
            simd::div_at(lvl, &mut got, 3.1);
            assert_bits_eq(&got, &want, &format!("div {name}"));

            let mut want = a.clone();
            simd::relu_at(SimdLevel::Scalar, &mut want);
            let mut got = a.clone();
            simd::relu_at(lvl, &mut got);
            assert_bits_eq(&got, &want, &format!("relu {name}"));

            let mut want = vec![0.0; len];
            simd::mul_at(SimdLevel::Scalar, &mut want, &a, &b);
            let mut got = vec![0.0; len];
            simd::mul_at(lvl, &mut got, &a, &b);
            assert_bits_eq(&got, &want, &format!("mul {name}"));

            let mut want = vec![0.0; len];
            simd::mul2_add_at(SimdLevel::Scalar, &mut want, &a, &b, &c, &d);
            let mut got = vec![0.0; len];
            simd::mul2_add_at(lvl, &mut got, &a, &b, &c, &d);
            assert_bits_eq(&got, &want, &format!("mul2_add {name}"));
        }
    }

    /// The axpy family — the inner loops of every matmul tier — is
    /// bit-identical across tiers.
    #[test]
    fn axpy_kernels_bit_identical(len in 1usize..70, seed in 0u64..1000) {
        let b0 = pseudo_vec(len, seed);
        let b1 = pseudo_vec(len, seed ^ 0x1111);
        let b2 = pseudo_vec(len, seed ^ 0x2222);
        let b3 = pseudo_vec(len, seed ^ 0x3333);
        let acc = pseudo_vec(len, seed ^ 0x4444);
        let (a0, a1, a2, a3) = (0.7f32, -1.3f32, 2.6f32, -0.2f32);

        for lvl in levels() {
            let name = lvl.name();

            let mut want = acc.clone();
            simd::axpy_at(SimdLevel::Scalar, &mut want, a0, &b0);
            let mut got = acc.clone();
            simd::axpy_at(lvl, &mut got, a0, &b0);
            assert_bits_eq(&got, &want, &format!("axpy {name}"));

            let mut want = acc.clone();
            simd::axpy4_shared_at(SimdLevel::Scalar, &mut want, a0, a1, a2, a3, &b0, &b1, &b2, &b3);
            let mut got = acc.clone();
            simd::axpy4_shared_at(lvl, &mut got, a0, a1, a2, a3, &b0, &b1, &b2, &b3);
            assert_bits_eq(&got, &want, &format!("axpy4_shared {name}"));

            let (mut w0, mut w1, mut w2, mut w3) =
                (acc.clone(), b1.clone(), b2.clone(), b3.clone());
            simd::axpy4_at(SimdLevel::Scalar, &mut w0, &mut w1, &mut w2, &mut w3, a0, a1, a2, a3, &b0);
            let (mut g0, mut g1, mut g2, mut g3) =
                (acc.clone(), b1.clone(), b2.clone(), b3.clone());
            simd::axpy4_at(lvl, &mut g0, &mut g1, &mut g2, &mut g3, a0, a1, a2, a3, &b0);
            assert_bits_eq(&g0, &w0, &format!("axpy4 r0 {name}"));
            assert_bits_eq(&g1, &w1, &format!("axpy4 r1 {name}"));
            assert_bits_eq(&g2, &w2, &format!("axpy4 r2 {name}"));
            assert_bits_eq(&g3, &w3, &format!("axpy4 r3 {name}"));
        }
    }

    /// The narrow-left direct-dot kernel is bit-identical across tiers.
    #[test]
    fn dot_rows_bit_identical((k, m) in (1usize..40, 1usize..40), seed in 0u64..1000) {
        let x = pseudo_vec(k, seed);
        let b = pseudo_vec(m * k, seed ^ 0x7777);
        for lvl in levels() {
            let mut want = Vec::new();
            simd::dot_rows_at(SimdLevel::Scalar, &x, &b, k, m, &mut want);
            let mut got = Vec::new();
            simd::dot_rows_at(lvl, &x, &b, k, m, &mut got);
            assert_bits_eq(&got, &want, &format!("dot_rows {}", lvl.name()));
        }
    }

    /// Full matmuls (plain and both transposed variants) are bit-identical
    /// across tiers on random rectangular shapes.
    #[test]
    fn matmul_bit_identical_across_levels((n, k, m) in (DIM, DIM, DIM), seed in 0u64..1000) {
        let a = pseudo_tensor(n, k, seed);
        let b = pseudo_tensor(k, m, seed ^ 0x9E37);
        let bt = pseudo_tensor(m, k, seed ^ 0x1357);
        let at = pseudo_tensor(k, n, seed ^ 0x2468);
        let want = a.matmul_with_level(&b, SimdLevel::Scalar);
        let want_tb = a.matmul_transposed_b_with_level(&bt, SimdLevel::Scalar);
        let want_ta = at.matmul_transposed_a_with_level(&b, SimdLevel::Scalar);
        for lvl in levels() {
            let name = lvl.name();
            assert_bits_eq(
                a.matmul_with_level(&b, lvl).as_slice(),
                want.as_slice(),
                &format!("matmul {name}"),
            );
            assert_bits_eq(
                a.matmul_transposed_b_with_level(&bt, lvl).as_slice(),
                want_tb.as_slice(),
                &format!("matmul_transposed_b {name}"),
            );
            assert_bits_eq(
                at.matmul_transposed_a_with_level(&b, lvl).as_slice(),
                want_ta.as_slice(),
                &format!("matmul_transposed_a {name}"),
            );
        }
    }

    /// The decoder's hot case — a single activation row against a wide
    /// weight — is bit-identical across tiers for every width, including
    /// every lane-tail residue.
    #[test]
    fn beam_row_matmul_bit_identical((k, m) in (1usize..24, 1usize..40), seed in 0u64..1000) {
        let a = pseudo_tensor(1, k, seed);
        let b = pseudo_tensor(k, m, seed ^ 0xBEA4);
        let want = a.matmul_with_level(&b, SimdLevel::Scalar);
        for lvl in levels() {
            assert_bits_eq(
                a.matmul_with_level(&b, lvl).as_slice(),
                want.as_slice(),
                &format!("1x{k}x{m} matmul {}", lvl.name()),
            );
        }
    }
}
