//! Property tests: the blocked matmul kernel and the transposed-operand
//! kernels agree with the straightforward reference kernel across random
//! rectangular shapes, and the tiled transpose is an involution.

use proptest::prelude::*;
use valuenet_tensor::Tensor;

const DIM: std::ops::Range<usize> = 1..33;

/// Asserts element-wise agreement within `1e-5` scaled by magnitude (the
/// kernels accumulate in different orders, so exact f32 equality is not the
/// contract — only agreement to rounding).
fn check_close(fast: &Tensor, reference: &Tensor) {
    assert_eq!(fast.shape(), reference.shape());
    for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
        assert!(
            (x - y).abs() < 1e-5 * (1.0 + y.abs()),
            "kernel divergence: {x} vs {y} (diff {})",
            (x - y).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked kernel ≡ naive kernel on random rectangular products.
    #[test]
    fn blocked_matmul_matches_naive(
        (n, k, m) in (DIM, DIM, DIM),
        seed in 0u64..1000,
    ) {
        let a = pseudo_tensor(n, k, seed);
        let b = pseudo_tensor(k, m, seed ^ 0x9E37);
        check_close(&a.matmul(&b), &a.matmul_naive(&b));
    }

    /// `matmul_transposed_b(x, y)` ≡ `x @ yᵀ` done the slow way.
    #[test]
    fn transposed_b_matches_materialised(
        (n, k, m) in (DIM, DIM, DIM),
        seed in 0u64..1000,
    ) {
        let x = pseudo_tensor(n, k, seed.wrapping_mul(3));
        let y = pseudo_tensor(m, k, seed.wrapping_mul(5) ^ 0xABCD);
        check_close(&x.matmul_transposed_b(&y), &x.matmul_naive(&y.transpose()));
    }

    /// `matmul_transposed_a(x, y)` ≡ `xᵀ @ y` done the slow way.
    #[test]
    fn transposed_a_matches_materialised(
        (n, k, m) in (DIM, DIM, DIM),
        seed in 0u64..1000,
    ) {
        let x = pseudo_tensor(k, n, seed.wrapping_mul(7));
        let y = pseudo_tensor(k, m, seed.wrapping_mul(11) ^ 0x1234);
        check_close(&x.matmul_transposed_a(&y), &x.transpose().matmul_naive(&y));
    }

    /// The tiled transpose is an involution and moves every element to the
    /// mirrored coordinate.
    #[test]
    fn transpose_involution((n, m) in (1usize..40, 1usize..40), seed in 0u64..1000) {
        let t = pseudo_tensor(n, m, seed);
        let tt = t.transpose();
        prop_assert_eq!(tt.shape(), (m, n));
        for r in 0..n {
            for c in 0..m {
                prop_assert_eq!(t.get(r, c), tt.get(c, r));
            }
        }
        prop_assert_eq!(&tt.transpose(), &t);
    }
}

/// Deterministic pseudo-random tensor (SplitMix64 stream) so shape and seed
/// fully determine contents.
fn pseudo_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 23) as f32 * 8.0 - 4.0
    };
    Tensor::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
}
