//! Buffer-pool invariants, exercised through the public `Tensor` API:
//!
//! * live tensors (including clones) never alias a pooled buffer,
//! * reuse is deterministic — per-thread LIFO within a size bucket,
//! * recycled buffers come back fully re-initialised,
//! * the process-wide statistics count every take/give.
//!
//! The pool's free lists are thread-local, so each `#[test]` thread owns its
//! own lists; only the stats counters are shared across threads, which is
//! why their assertions use `>=` deltas.

use valuenet_tensor::{pool, Tensor};

fn ptr_of(t: &Tensor) -> *const f32 {
    t.as_slice().as_ptr()
}

#[test]
fn live_tensors_never_alias() {
    pool::clear_thread_local();
    // Interleave constructions, clones and drops; at every point all live
    // tensors must sit on pairwise-distinct buffers, because a buffer only
    // enters a free list when its owning tensor is dropped.
    let a = Tensor::full(4, 4, 1.0);
    let b = Tensor::full(4, 4, 2.0);
    let c = a.clone();
    drop(Tensor::full(4, 4, 9.0)); // retires one buffer into the pool
    let d = Tensor::full(4, 4, 3.0); // may reuse the retired buffer, not a–c
    let live = [&a, &b, &c, &d];
    for (i, x) in live.iter().enumerate() {
        for y in &live[i + 1..] {
            assert_ne!(ptr_of(x), ptr_of(y), "live tensors share a buffer");
        }
    }
    // Clones are deep: mutating the original leaves the clone untouched.
    let mut a = a;
    a.as_mut_slice()[0] = 42.0;
    assert_eq!(c.as_slice()[0], 1.0);
    assert!(a.as_slice()[1..].iter().all(|&x| x == 1.0));
}

#[test]
fn reuse_is_lifo_within_a_bucket() {
    if !pool::enabled() {
        return;
    }
    pool::clear_thread_local();
    let a = Tensor::zeros(4, 4); // 16 elements -> bucket 4
    let b = Tensor::zeros(4, 4);
    let (pa, pb) = (ptr_of(&a), ptr_of(&b));
    drop(a); // free list: [a]
    drop(b); // free list: [a, b]
    let c = Tensor::zeros(4, 4);
    let d = Tensor::zeros(4, 4);
    assert_eq!(ptr_of(&c), pb, "LIFO: the most recently retired buffer comes back first");
    assert_eq!(ptr_of(&d), pa, "LIFO: then the older one");
    // Replaying the same sequence reuses the same buffers in the same order:
    // reuse is a deterministic function of the take/give history.
    drop(c);
    drop(d);
    let e = Tensor::zeros(4, 4);
    let f = Tensor::zeros(4, 4);
    assert_eq!(ptr_of(&e), pa);
    assert_eq!(ptr_of(&f), pb);
}

#[test]
fn different_buckets_do_not_mix() {
    if !pool::enabled() {
        return;
    }
    pool::clear_thread_local();
    let small = Tensor::zeros(1, 4); // bucket 2
    let p_small = ptr_of(&small);
    drop(small);
    // A larger request must not be served from the smaller bucket.
    let big = Tensor::zeros(8, 8);
    assert_ne!(ptr_of(&big), p_small);
    // The small buffer is still there for the next same-sized request.
    let small2 = Tensor::zeros(2, 2);
    assert_eq!(ptr_of(&small2), p_small, "4-element request reuses the 4-element buffer");
}

#[test]
fn recycled_buffers_are_reinitialised() {
    pool::clear_thread_local();
    drop(Tensor::full(3, 5, f32::NAN));
    let z = Tensor::zeros(3, 5);
    assert!(z.as_slice().iter().all(|&x| x == 0.0), "zeros() leaked recycled contents");
    drop(z);
    let f = Tensor::full(3, 5, 7.0);
    assert!(f.as_slice().iter().all(|&x| x == 7.0), "full() leaked recycled contents");
    drop(f);
    let v = Tensor::from_vec(3, 5, (0..15).map(|i| i as f32).collect());
    assert_eq!(v.get(2, 4), 14.0);
}

#[test]
fn stats_count_takes_and_gives() {
    pool::clear_thread_local();
    let before = pool::stats();
    {
        let _a = Tensor::zeros(16, 16); // cold: a miss
        let _b = _a.clone(); // another take
    } // both retire
    let t = Tensor::zeros(16, 16); // warm: served from this thread's pool
    drop(t);
    let delta = pool::stats().since(&before);
    // Other test threads may add to the process-wide counters concurrently,
    // so only lower bounds are exact.
    assert!(delta.misses + delta.hits >= 3, "three takes happened: {delta:?}");
    if pool::enabled() {
        assert!(delta.returns >= 3, "three buffers retired: {delta:?}");
        assert!(delta.hits >= 1, "the warm take should hit: {delta:?}");
        assert!(delta.recycled_bytes >= 4 * 256, "hit served 256 f32s: {delta:?}");
    }
    assert!(delta.alloc_bytes >= 4 * 256, "the cold take allocated: {delta:?}");
    let rate = pool::stats().hit_rate();
    assert!((0.0..=1.0).contains(&rate));
}
